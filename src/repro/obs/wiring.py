"""Pull-based instrumentation of the simulation stack (the metric catalog).

This module is the single place where the stack's metric *names* are
defined, so the catalog in ``docs/observability.md`` has one source of
truth.  All wiring here is **pull**: collectors registered on the
registry read counters the engine, transport, mempools and fault injector
maintain anyway, and copy them into instruments at collect/export time.
The instrumented hot paths therefore run the same machine code whether
observability is attached or not — which is what keeps the golden
determinism fingerprints and the engine-throughput bench untouched.

Push-style instrumentation (events that deserve a log record the moment
they happen: faults, message drops, campaign iterations, monitor
snapshots) lives at the call sites in :mod:`repro.sim.faults`,
:mod:`repro.eth.network`, :mod:`repro.core.campaign` and
:mod:`repro.core.monitor`, guarded by ``obs.enabled``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs import Observability

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.eth.network import Network
    from repro.service.server import MeasurementService
    from repro.sim.engine import Simulator

# Metric names (the catalog; keep docs/observability.md in sync).
SIM_TIME = "toposhot_sim_time_seconds"
SIM_EVENTS_EXECUTED = "toposhot_sim_events_executed_total"
SIM_EVENTS_PENDING = "toposhot_sim_events_pending"

MESSAGES_SENT = "toposhot_messages_sent_total"
MESSAGES_BY_KIND = "toposhot_messages_total"
MESSAGES_DROPPED = "toposhot_messages_dropped_total"
DROPS_BY_REASON = "toposhot_message_drops_total"
NODES = "toposhot_nodes"
NODES_CRASHED = "toposhot_nodes_crashed"
LINKS = "toposhot_links"

MEMPOOL_TRANSACTIONS = "toposhot_mempool_transactions"
MEMPOOL_PENDING = "toposhot_mempool_pending_transactions"
MEMPOOL_OUTCOMES = "toposhot_mempool_outcomes_total"
MEMPOOL_EVICTIONS = "toposhot_mempool_evictions_total"
MEMPOOL_REPLACEMENTS = "toposhot_mempool_replacements_total"

SUPERNODE_OBSERVATIONS = "toposhot_supernode_observations_total"

FAULTS_FIRED = "toposhot_faults_total"
FAULT_MESSAGES_DROPPED = "toposhot_fault_messages_dropped_total"
FAULT_SEND_TIMEOUTS = "toposhot_fault_send_timeouts_total"
FAULT_CRASHES = "toposhot_fault_crashes_total"
FAULT_CHURN = "toposhot_fault_churn_events_total"

RPC_FAULTS_INJECTED = "toposhot_rpc_faults_injected_total"
RPC_CALLS = "toposhot_rpc_calls_total"
RPC_ATTEMPTS = "toposhot_rpc_attempts_total"
RPC_RETRIES = "toposhot_rpc_retries_total"
RPC_HEDGES = "toposhot_rpc_hedged_attempts_total"
RPC_RATE_LIMITED = "toposhot_rpc_rate_limited_total"
RPC_BREAKER_REJECTIONS = "toposhot_rpc_breaker_rejections_total"
RPC_EXHAUSTED = "toposhot_rpc_exhausted_total"
RPC_DEGRADED_LOOKUPS = "toposhot_rpc_degraded_lookups_total"
RPC_SNAPSHOT_VERDICTS = "toposhot_rpc_snapshot_verdicts_total"
RPC_ENDPOINT_HEALTH = "toposhot_rpc_endpoint_health"

CAMPAIGN_ITERATIONS = "toposhot_campaign_iterations_total"
CAMPAIGN_EDGES = "toposhot_campaign_edges_detected"
CAMPAIGN_TXS = "toposhot_campaign_transactions_sent_total"
CAMPAIGN_SETUP_FAILURES = "toposhot_campaign_setup_failures_total"
CAMPAIGN_SEND_TIMEOUTS = "toposhot_campaign_send_timeouts_total"
CAMPAIGN_FAILURES = "toposhot_campaign_failures_total"
CAMPAIGN_ITER_SIM_SECONDS = "toposhot_campaign_iteration_sim_seconds"
CAMPAIGN_ITER_WALL_SECONDS = "toposhot_campaign_iteration_wall_seconds"
CAMPAIGN_CROSS_VALIDATIONS = "toposhot_campaign_cross_validations_total"
CAMPAIGN_QUARANTINED = "toposhot_campaign_quarantined_edges_total"

ARENA_PROTOCOLS_RUN = "toposhot_arena_protocols_run_total"
ARENA_PREDICTED_EDGES = "toposhot_arena_predicted_edges"
ARENA_PROBE_TXS = "toposhot_arena_probe_transactions_total"
ARENA_PROBE_MESSAGES = "toposhot_arena_probe_messages_total"
ARENA_SIM_SECONDS = "toposhot_arena_protocol_sim_seconds"
ARENA_WALL_SECONDS = "toposhot_arena_protocol_wall_seconds"

BEHAVIORS_INSTALLED = "toposhot_byzantine_nodes"
BEHAVIOR_ACTIONS = "toposhot_byzantine_actions_total"
INVARIANT_VIOLATIONS = "toposhot_invariant_violations_total"

MONITOR_SNAPSHOTS = "toposhot_monitor_snapshots_total"
MONITOR_LAST_EDGES = "toposhot_monitor_last_edges"
MONITOR_LAST_CHURN = "toposhot_monitor_last_churn_rate"
MONITOR_EDGES_ADDED = "toposhot_monitor_edges_added_total"
MONITOR_EDGES_REMOVED = "toposhot_monitor_edges_removed_total"
MONITOR_DELTA_ROUNDS = "toposhot_monitor_delta_rounds_total"
MONITOR_DELTA_PROBED = "toposhot_monitor_delta_probed_pairs_total"
MONITOR_DELTA_SAVED = "toposhot_monitor_delta_saved_pairs_total"

FEEMARKET_FLOOR = "toposhot_feemarket_floor_wei"
FEEMARKET_SURGE = "toposhot_feemarket_surge_multiplier"
FEEMARKET_OCCUPANCY = "toposhot_feemarket_sampled_occupancy"
FEEMARKET_UPDATES = "toposhot_feemarket_updates_total"
FEEMARKET_REJECTED = "toposhot_feemarket_rejected_total"

WORKLOAD_TICKS = "toposhot_workload_ticks_total"
WORKLOAD_OFFERED = "toposhot_workload_offered_total"
WORKLOAD_FLOOR_REJECTED = "toposhot_workload_floor_rejected_total"
WORKLOAD_MATERIALIZED = "toposhot_workload_materialized_total"
WORKLOAD_REPLACEMENTS = "toposhot_workload_replacements_total"
WORKLOAD_OFFERED_RATE = "toposhot_workload_offered_tx_per_second"

SERVICE_QUEUE_DEPTH = "toposhot_service_queue_depth"
SERVICE_RUNNING = "toposhot_service_running_jobs"
SERVICE_JOBS_BY_STATE = "toposhot_service_jobs"
SERVICE_ADMITTED = "toposhot_service_admitted_total"
SERVICE_REJECTED = "toposhot_service_rejected_total"
SERVICE_RECOVERED = "toposhot_service_recovered_jobs_total"
SERVICE_RETRIES = "toposhot_service_retries_total"
SERVICE_TENANT_TOKENS = "toposhot_service_tenant_tokens"
SERVICE_BREAKER_STATE = "toposhot_service_breaker_state"
SERVICE_BREAKER_TRIPS = "toposhot_service_breaker_trips_total"
SERVICE_JOURNAL_APPENDS = "toposhot_service_journal_appends_total"
SERVICE_QUEUE_SECONDS = "toposhot_service_queue_seconds"
SERVICE_RUN_SECONDS = "toposhot_service_run_seconds"
SERVICE_TOTAL_SECONDS = "toposhot_service_total_seconds"


def instrument_simulator(obs: Observability, sim: "Simulator") -> None:
    """Mirror the engine's own counters into the registry at collect time."""
    if not obs.enabled:
        return
    registry = obs.metrics
    time_gauge = registry.gauge(SIM_TIME, "Current simulated clock")
    executed = registry.counter(
        SIM_EVENTS_EXECUTED, "Events executed by the discrete-event engine"
    )
    pending = registry.gauge(
        SIM_EVENTS_PENDING, "Events still queued (including cancelled)"
    )

    def collect() -> None:
        time_gauge.set(sim.now)
        executed.set_total(sim.executed_events)
        pending.set(sim.pending_events)

    registry.add_collector(collect)


def instrument_service(
    obs: Observability, service: "MeasurementService"
) -> None:
    """Mirror the measurement service's counters into the registry.

    Pull-style like the rest of the stack: queue depths, admission and
    shed counters, per-tenant token levels and breaker state are read at
    collect/export time from state the service maintains anyway.  The
    submit-to-result latency *histograms* (``SERVICE_*_SECONDS``) are the
    push exception — completions are cold events, observed directly in
    :meth:`MeasurementService._observe_completion`.
    """
    if not obs.enabled:
        return
    from repro.service.jobs import STATES as service_states

    registry = obs.metrics
    queue_gauge = registry.gauge(
        SERVICE_QUEUE_DEPTH, "Jobs queued across all tenants"
    )
    running_gauge = registry.gauge(
        SERVICE_RUNNING, "Jobs currently executing"
    )
    admitted = registry.counter(
        SERVICE_ADMITTED, "Jobs that passed admission control"
    )
    recovered = registry.counter(
        SERVICE_RECOVERED, "Jobs requeued by journal recovery"
    )
    retries = registry.counter(
        SERVICE_RETRIES, "Attempt retries performed by the supervisor"
    )
    breaker_gauge = registry.gauge(
        SERVICE_BREAKER_STATE,
        "Circuit breaker state (0=closed, 1=half_open, 2=open)",
    )
    trips = registry.counter(
        SERVICE_BREAKER_TRIPS, "Times the circuit breaker opened"
    )
    journal_appends = registry.counter(
        SERVICE_JOURNAL_APPENDS, "Durable journal appends"
    )
    breaker_levels = {"closed": 0, "half_open": 1, "open": 2}

    def collect() -> None:
        scheduler = service.scheduler
        admission = service.admission
        queue_gauge.set(scheduler.queued_total())
        for tenant, depth in scheduler.depths().items():
            registry.gauge(
                SERVICE_QUEUE_DEPTH, "Jobs queued across all tenants",
                labels={"tenant": tenant},
            ).set(depth)
        running_gauge.set(sum(service._running.values()))
        admitted.set_total(admission.admitted_total)
        for reason, count in admission.rejected.items():
            registry.counter(
                SERVICE_REJECTED, "Typed admission rejections, by reason",
                labels={"reason": reason},
            ).set_total(count)
        for tenant, levels in admission.token_levels().items():
            for currency, value in levels.items():
                registry.gauge(
                    SERVICE_TENANT_TOKENS,
                    "Remaining tenant tokens, by currency",
                    labels={"tenant": tenant, "currency": currency},
                ).set(value)
        by_state = {state: 0 for state in service_states}
        for record in service.records.values():
            by_state[record.state] += 1
        for state, count in by_state.items():
            registry.gauge(
                SERVICE_JOBS_BY_STATE, "Jobs by lifecycle state",
                labels={"state": state},
            ).set(count)
        recovered.set_total(service.recovered_jobs)
        retries.set_total(service.supervisor.retries_total)
        breaker_gauge.set(breaker_levels.get(service.breaker.state, 0))
        trips.set_total(service.breaker.trips_total)
        if service.journal is not None:
            journal_appends.set_total(service.journal.appends_total)

    registry.add_collector(collect)


def instrument_network(
    obs: Observability, network: "Network", per_node: bool = False
) -> None:
    """Wire transport, mempool, supernode and fault-injector counters.

    ``per_node=True`` additionally exports per-node pool sizes and
    replacement/eviction counts (the paper's per-target view) — bounded
    label cardinality is the operator's responsibility at large N.
    """
    if not obs.enabled:
        return
    instrument_simulator(obs, network.sim)
    registry = obs.metrics
    sent = registry.counter(MESSAGES_SENT, "Messages handed to transport")
    dropped = registry.counter(
        MESSAGES_DROPPED, "Messages that never reached their target"
    )
    nodes_gauge = registry.gauge(NODES, "Nodes attached to the network")
    crashed_gauge = registry.gauge(NODES_CRASHED, "Nodes currently down")
    links_gauge = registry.gauge(LINKS, "Active overlay links")
    pool_gauge = registry.gauge(
        MEMPOOL_TRANSACTIONS, "Buffered transactions across all pools"
    )
    pool_pending_gauge = registry.gauge(
        MEMPOOL_PENDING, "Executable transactions across all pools"
    )

    def collect() -> None:
        sent.set_total(network.messages_sent)
        dropped.set_total(network.messages_dropped)
        nodes_gauge.set(len(network.nodes))
        crashed_gauge.set(network._crashed_count)
        links_gauge.set(network.link_count)
        for kind, count in network.messages_by_kind.items():
            registry.counter(
                MESSAGES_BY_KIND, "Messages sent by message kind",
                labels={"kind": kind},
            ).set_total(count)
        for reason, count in network.drops_by_reason.items():
            registry.counter(
                DROPS_BY_REASON, "Message drops by reason",
                labels={"reason": reason},
            ).set_total(count)

        # Mempool admission/replacement/eviction, aggregated over nodes
        # (the paper's replaced/evicted-per-target counters, §5.3).
        totals: dict = {}
        pool_size = 0
        pool_pending = 0
        observations: dict = {}
        for node in network.nodes.values():
            pool = node.mempool
            pool_size += len(pool)
            pool_pending += pool.pending_count
            for key, value in pool.stats.items():
                totals[key] = totals.get(key, 0) + value
            counts = getattr(node, "observation_counts", None)
            if counts:
                for kind, value in counts.items():
                    observations[kind] = observations.get(kind, 0) + value
            if per_node:
                registry.gauge(
                    MEMPOOL_TRANSACTIONS, labels={"node": node.id}
                ).set(len(pool))
                registry.counter(
                    MEMPOOL_REPLACEMENTS, labels={"node": node.id}
                ).set_total(pool.stats.get("replaced", 0))
                registry.counter(
                    MEMPOOL_EVICTIONS, labels={"node": node.id}
                ).set_total(pool.stats.get("evictions", 0))
        pool_gauge.set(pool_size)
        pool_pending_gauge.set(pool_pending)
        for key, value in totals.items():
            if key == "evictions":
                registry.counter(
                    MEMPOOL_EVICTIONS, "Transactions evicted from full pools"
                ).set_total(value)
            else:
                registry.counter(
                    MEMPOOL_OUTCOMES, "Mempool admission outcomes",
                    labels={"outcome": key},
                ).set_total(value)
        for kind, value in observations.items():
            registry.counter(
                SUPERNODE_OBSERVATIONS,
                "Supernode possession observations by evidence kind",
                labels={"kind": kind},
            ).set_total(value)

        faults = network.faults
        if faults is not None:
            registry.counter(
                FAULT_MESSAGES_DROPPED, "Deliveries dropped by injected loss"
            ).set_total(faults.messages_dropped)
            registry.counter(
                FAULT_SEND_TIMEOUTS, "Supernode injections timed out"
            ).set_total(faults.send_timeouts)
            registry.counter(
                FAULT_CRASHES, "Nodes crashed by fault injection"
            ).set_total(faults.crashes)
            registry.counter(
                FAULT_CHURN, "Links churned by fault injection"
            ).set_total(faults.churn_events)
            rpc_faults = faults.rpc
            if rpc_faults is not None:
                for kind, total in (
                    ("timeout", rpc_faults.timeouts),
                    ("error", rpc_faults.transient_errors),
                    ("rate_limit", rpc_faults.rate_limited),
                    ("stale", rpc_faults.stale_served),
                    ("truncate", rpc_faults.truncated),
                    ("flap", rpc_faults.flaps),
                ):
                    registry.counter(
                        RPC_FAULTS_INJECTED,
                        "RPC-plane faults injected, by kind",
                        labels={"kind": kind},
                    ).set_total(total)

        # Resilient RPC client counters (only materialized once someone
        # actually called through the client — reading the private slot
        # avoids creating a client as an instrumentation side effect).
        client = getattr(network, "_rpc_client", None)
        if client is not None:
            registry.counter(
                RPC_CALLS, "Logical RPC calls issued by the client"
            ).set_total(client.calls_total)
            registry.counter(
                RPC_ATTEMPTS, "Physical RPC attempts (incl. retries)"
            ).set_total(client.attempts_total)
            registry.counter(
                RPC_RETRIES, "RPC attempts beyond the first, per call"
            ).set_total(client.retries_total)
            registry.counter(
                RPC_HEDGES, "Hedged re-attempts after a timed-out read"
            ).set_total(client.hedges_total)
            registry.counter(
                RPC_RATE_LIMITED, "Attempts deferred by endpoint throttling"
            ).set_total(client.rate_limited_total)
            registry.counter(
                RPC_BREAKER_REJECTIONS,
                "Calls refused because the endpoint breaker was open",
            ).set_total(client.breaker_rejections_total)
            registry.counter(
                RPC_EXHAUSTED, "Calls that ran out of attempts"
            ).set_total(client.exhausted_total)
            registry.counter(
                RPC_DEGRADED_LOOKUPS,
                "Pool lookups that returned unknown (degraded plane)",
            ).set_total(client.degraded_lookups_total)
            for verdict, count in client.snapshot_verdicts.items():
                registry.counter(
                    RPC_SNAPSHOT_VERDICTS,
                    "Snapshot validation verdicts, by verdict",
                    labels={"verdict": verdict},
                ).set_total(count)
            for node_id, score in client.health_report().items():
                registry.gauge(
                    RPC_ENDPOINT_HEALTH,
                    "EMA health score per RPC endpoint (1 = healthy)",
                    labels={"node": node_id},
                ).set(score)

        behaviors = network.behaviors
        if behaviors is not None:
            for kind, count in behaviors.kind_counts().items():
                registry.gauge(
                    BEHAVIORS_INSTALLED,
                    "Nodes currently running each Byzantine behavior",
                    labels={"kind": kind},
                ).set(count)
            for kind, count in behaviors.counts.items():
                registry.counter(
                    BEHAVIOR_ACTIONS,
                    "Misbehaving actions taken, by behavior kind",
                    labels={"kind": kind},
                ).set_total(count)

        checker = network.invariants
        if checker is not None:
            for name, count in checker.counts.items():
                registry.counter(
                    INVARIANT_VIOLATIONS,
                    "Runtime invariant violations, by invariant",
                    labels={"invariant": name},
                ).set_total(count)

        market = network.fee_market
        if market is not None:
            registry.gauge(
                FEEMARKET_FLOOR, "Current fee-market admission floor (wei)"
            ).set(market.floor)
            registry.gauge(
                FEEMARKET_SURGE, "Current surge multiplier"
            ).set(market.surge)
            registry.gauge(
                FEEMARKET_OCCUPANCY, "Mean sampled pool occupancy"
            ).set(market.occupancy)
            registry.counter(
                FEEMARKET_UPDATES, "Fee-market floor recomputations"
            ).set_total(market.updates)
            registry.counter(
                FEEMARKET_REJECTED,
                "Transactions rejected below the fee-market floor",
            ).set_total(totals.get("rejected_fee_floor", 0))

    registry.add_collector(collect)


def instrument_workload(obs: Observability, workload) -> None:
    """Mirror a :class:`~repro.netgen.workloads.BatchedWorkload`'s tick
    accounting into the registry (pull-based, like the rest)."""
    if not obs.enabled:
        return
    registry = obs.metrics
    name = workload.shape.name
    labels = {"shape": name}
    ticks = registry.counter(
        WORKLOAD_TICKS, "Workload ticks executed", labels=labels
    )
    offered = registry.counter(
        WORKLOAD_OFFERED, "Transactions offered by the workload", labels=labels
    )
    floor_rejected = registry.counter(
        WORKLOAD_FLOOR_REJECTED,
        "Offered transactions statistically rejected below the floor",
        labels=labels,
    )
    materialized = registry.counter(
        WORKLOAD_MATERIALIZED,
        "Transactions actually constructed and inserted",
        labels=labels,
    )
    replacements = registry.counter(
        WORKLOAD_REPLACEMENTS,
        "Replacement transactions submitted (MEV races)",
        labels=labels,
    )
    rate = registry.gauge(
        WORKLOAD_OFFERED_RATE, "Mean offered tx/s so far", labels=labels
    )

    def collect() -> None:
        stats = workload.stats
        ticks.set_total(stats["ticks"])
        offered.set_total(stats["offered"])
        floor_rejected.set_total(stats["floor_rejected"])
        materialized.set_total(stats["materialized"])
        replacements.set_total(stats["replacements"])
        rate.set(workload.offered_rate())

    registry.add_collector(collect)
