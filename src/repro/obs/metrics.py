"""Typed metrics for the measurement stack.

The paper's live deployment was driven by watching counters — replaced and
evicted transactions per target, per-link probe latencies, RPC timeout
rates (Sections 5.3 and 6.1).  This module provides the three instrument
types those observations need:

- :class:`Counter` — a monotonically increasing count (messages sent,
  faults fired, probes completed);
- :class:`Gauge` — a point-in-time value that can move both ways (pool
  sizes, pending events, churn rate);
- :class:`Histogram` — a bounded-reservoir distribution (per-iteration
  latencies, batch sizes) exposing count/sum/min/max and quantiles.

A :class:`MetricsRegistry` owns the instruments, keyed by (name, labels).
Instrumentation is split into two disciplines so that hot paths stay hot:

- **push**: cold call sites hold an instrument and call ``inc``/``observe``
  directly (fault events, campaign iterations);
- **pull**: collectors registered with :meth:`MetricsRegistry.add_collector`
  copy counters the simulation already maintains (``Network.messages_sent``,
  ``Mempool.stats``) into instruments at :meth:`MetricsRegistry.collect`
  time — zero per-event cost, paid only at export.

Nothing here consumes RNG streams or simulated time, so attaching metrics
can never perturb a deterministic run (the golden fingerprints of
``tests/integration/test_perf_determinism.py`` are unaffected).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ObservabilityError

Number = Union[int, float]
LabelKey = Tuple[Tuple[str, str], ...]

DEFAULT_RESERVOIR = 1024


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def set_total(self, value: Number) -> None:
        """Adopt an externally maintained running total (pull wiring).

        Collectors use this to mirror counters the simulation already keeps
        (e.g. ``Network.messages_sent``) without double counting across
        repeated ``collect()`` calls.
        """
        self.value = value

    def sample(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A point-in-time value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def sample(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A distribution over observed values with a bounded reservoir.

    ``count``/``sum``/``min``/``max`` are exact; quantiles come from a
    reservoir capped at ``max_samples``.  The reservoir thins
    *deterministically*: once full it is compacted to every other sample and
    the keep-stride doubles, so two identical runs keep identical samples
    (no RNG draw — randomized reservoir sampling would either perturb a
    shared stream or need its own seed plumbing).
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "help",
        "labels",
        "max_samples",
        "count",
        "sum",
        "min",
        "max",
        "_reservoir",
        "_stride",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelKey = (),
        max_samples: int = DEFAULT_RESERVOIR,
    ) -> None:
        if max_samples < 2:
            raise ObservabilityError(
                f"histogram {name!r} needs max_samples >= 2, got {max_samples}"
            )
        self.name = name
        self.help = help
        self.labels = labels
        self.max_samples = max_samples
        self.count = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir: List[float] = []
        self._stride = 1

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        index = self.count
        self.count = index + 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if index % self._stride:
            return
        reservoir = self._reservoir
        reservoir.append(value)
        if len(reservoir) >= self.max_samples:
            # Deterministic compaction: keep every other sample, double the
            # stride. Future observations land at the coarser rate.
            del reservoir[1::2]
            self._stride *= 2

    def quantile(self, q: float) -> Optional[float]:
        """Approximate ``q``-quantile (0..1) from the reservoir."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        reservoir = sorted(self._reservoir)
        if not reservoir:
            return None
        if len(reservoir) == 1:
            return reservoir[0]
        position = q * (len(reservoir) - 1)
        low = int(position)
        high = min(low + 1, len(reservoir) - 1)
        fraction = position - low
        return reservoir[low] * (1.0 - fraction) + reservoir[high] * fraction

    @property
    def reservoir_size(self) -> int:
        return len(self._reservoir)

    def sample(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Owner of every instrument, keyed by (name, sorted label items).

    One metric *name* maps to one instrument type and one help string; the
    same name with different labels yields distinct instruments of the same
    family (how Prometheus models labeled series).
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Instrument] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Instrument creation (get-or-create)
    # ------------------------------------------------------------------
    def _get(
        self,
        factory: type,
        name: str,
        help: str,
        labels: Optional[Mapping[str, str]],
        **kwargs: object,
    ) -> Instrument:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if not isinstance(instrument, factory):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {factory.kind}"  # type: ignore[attr-defined]
                )
            return instrument
        registered_kind = self._kinds.get(name)
        if registered_kind is not None and registered_kind != factory.kind:  # type: ignore[attr-defined]
            raise ObservabilityError(
                f"metric {name!r} already registered as {registered_kind}, "
                f"not {factory.kind}"  # type: ignore[attr-defined]
            )
        instrument = factory(name, help=help, labels=key[1], **kwargs)
        self._instruments[key] = instrument
        self._kinds[name] = factory.kind  # type: ignore[attr-defined]
        if help and name not in self._help:
            self._help[name] = help
        return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        return self._get(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        return self._get(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        max_samples: int = DEFAULT_RESERVOIR,
    ) -> Histogram:
        return self._get(  # type: ignore[return-value]
            Histogram, name, help, labels, max_samples=max_samples
        )

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    # ------------------------------------------------------------------
    # Pull collectors
    # ------------------------------------------------------------------
    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callable run at every :meth:`collect`.

        Collectors read state the simulation maintains anyway and write it
        into instruments (``Counter.set_total`` / ``Gauge.set``), making
        the instrumented hot paths literally zero-cost until export.
        """
        self._collectors.append(collector)

    def collect(self) -> List[Instrument]:
        """Run all collectors, then return instruments sorted by identity."""
        for collector in self._collectors:
            collector()
        return [
            self._instruments[key] for key in sorted(self._instruments.keys())
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._kinds

    def snapshot(self) -> List[Dict[str, object]]:
        """Collect and return every instrument as a JSON-friendly dict."""
        return [instrument.sample() for instrument in self.collect()]
