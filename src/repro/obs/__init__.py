"""Unified observability: typed metrics + structured events for the stack.

One :class:`Observability` object bundles a
:class:`~repro.obs.metrics.MetricsRegistry` and an
:class:`~repro.obs.events.EventLog` behind a single enabled/disabled
switch.  The design contract, relied on by every instrumented module:

- **disabled is free.**  :data:`NULL` (the module-wide disabled instance)
  hands out shared no-op instruments and a no-op ``emit``, and hot paths
  are wired *pull-style* (collectors read counters the simulation already
  keeps), so a run without observability executes the identical code it
  did before this layer existed.
- **enabled is cheap.**  Push sites fire only on cold events (faults,
  campaign iterations, drops); everything per-message/per-event is
  harvested at :meth:`Observability.snapshot`/export time.
- **never perturbs determinism.**  No RNG stream, no simulated-time event,
  no iteration over unordered containers feeds back into the simulation.

Typical operator wiring::

    from repro.obs import Observability
    from repro.obs.export import write_metrics

    obs = Observability()
    shot = TopoShot.attach(network, obs=obs)      # wires the whole stack
    shot.measure_network()
    write_metrics(obs.metrics, "campaign.prom")   # Prometheus text format

Exporters (JSON-lines, Prometheus, CSV) live in :mod:`repro.obs.export`;
the metric catalog and stack wiring in :mod:`repro.obs.wiring`; the
documentation is ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.obs.events import DEFAULT_CAPACITY, EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "Observability",
]


def _noop(*_args: object, **_kwargs: object) -> None:
    """Shared pre-bound sink for disabled observability."""


class _NoopInstrument:
    """Counter/gauge/histogram stand-in whose every method does nothing."""

    __slots__ = ()

    inc = _noop
    dec = _noop
    set = _noop
    set_total = _noop
    observe = _noop

    def quantile(self, _q: float) -> None:
        return None

    def sample(self) -> Dict[str, object]:  # pragma: no cover - debugging aid
        return {"name": "<noop>", "type": "noop", "labels": {}, "value": None}


_NOOP_INSTRUMENT = _NoopInstrument()


class Observability:
    """Metrics registry + event log behind one switch.

    ``emit`` is pre-bound in ``__init__``: the enabled instance's ``emit``
    *is* ``EventLog.append`` (no wrapper frame), the disabled instance's is
    a shared no-op.  Instrument factories behave the same way — a disabled
    instance returns one shared do-nothing instrument, so call sites never
    branch on ``enabled`` themselves unless they want to skip argument
    construction too.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        enabled: bool = True,
        event_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog(event_capacity)
        self.emit = self.events.append if enabled else _noop

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False, event_capacity=1)

    # ------------------------------------------------------------------
    # Instrument factories (no-ops when disabled)
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ):
        if not self.enabled:
            return _NOOP_INSTRUMENT
        return self.metrics.counter(name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ):
        if not self.enabled:
            return _NOOP_INSTRUMENT
        return self.metrics.gauge(name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        max_samples: int = 1024,
    ):
        if not self.enabled:
            return _NOOP_INSTRUMENT
        return self.metrics.histogram(name, help, labels, max_samples)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Collect everything into one JSON-friendly payload."""
        return {
            "metrics": self.metrics.snapshot(),
            "events": {
                "recorded": self.events.recorded,
                "retained": len(self.events),
                "dropped": self.events.dropped,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Observability({state}, metrics={len(self.metrics)}, "
            f"events={len(self.events)})"
        )


#: Shared disabled instance: the default value of every ``obs`` hook in the
#: stack. Modules call ``NULL.emit(...)``-shaped code paths only on cold
#: branches, and ``NULL`` makes those calls free.
NULL = Observability.disabled()
