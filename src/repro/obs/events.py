"""Ring-buffered structured event log.

The :class:`~repro.sim.tracing.Tracer` keeps an append-only list of
``TraceRecord`` dataclasses whose ``detail`` field is a pre-formatted
string — fine for tests that narrate one scenario, costly for long
campaigns (every record allocates a dataclass, the buffer only grows, and
call sites pay string formatting whether anyone reads the trace or not).

:class:`EventLog` is the operator-facing alternative:

- records are **plain tuples** ``(time, kind, *fields)`` — no string
  formatting at the recording site, fields stay typed until export;
- the buffer is a **ring**: beyond ``capacity`` the *oldest* records are
  overwritten (an operator wants the most recent window; the Tracer's
  drop-newest policy suits deterministic tests that replay from t=0);
- ``recorded`` counts every append ever made, so the overwritten share is
  always visible (``dropped``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ObservabilityError

EventRecord = Tuple  # (time, kind, *fields)

DEFAULT_CAPACITY = 65536


class EventLog:
    """Bounded, overwrite-oldest log of tuple-shaped events."""

    __slots__ = ("capacity", "recorded", "_buffer", "_start")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ObservabilityError(
                f"event log capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.recorded = 0
        self._buffer: List[EventRecord] = []
        self._start = 0

    def append(self, time: float, kind: str, *fields: object) -> None:
        """Record one event; the hot path builds one tuple, nothing else."""
        record = (time, kind) + fields
        buffer = self._buffer
        if len(buffer) < self.capacity:
            buffer.append(record)
        else:
            buffer[self._start] = record
            self._start = (self._start + 1) % self.capacity
        self.recorded += 1

    @property
    def dropped(self) -> int:
        """How many records have been overwritten by newer ones."""
        return self.recorded - len(self._buffer)

    def records(self) -> List[EventRecord]:
        """Retained records, oldest first."""
        if self._start == 0:
            return list(self._buffer)
        return self._buffer[self._start :] + self._buffer[: self._start]

    def filter(self, kind: Optional[str] = None) -> List[EventRecord]:
        """Retained records of one kind (or all), oldest first."""
        if kind is None:
            return self.records()
        return [record for record in self.records() if record[1] == kind]

    def clear(self) -> None:
        self._buffer.clear()
        self._start = 0
        self.recorded = 0

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON-friendly view: ``{"time", "kind", "fields"}`` per record."""
        return [
            {"time": record[0], "kind": record[1], "fields": list(record[2:])}
            for record in self.records()
        ]

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self.records())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventLog(retained={len(self._buffer)}, recorded={self.recorded}, "
            f"capacity={self.capacity})"
        )
