"""Security implications of a measured topology (Section 3 use cases).

The paper motivates topology measurement with concrete attack/defence
analyses that become possible once the active-link graph is known:

- **Use case 1 — targeted eclipse attacks**: low-degree nodes can be
  isolated by attacking just their few active neighbours;
- **Use case 2 — single points of failure**: supernodes, bridge (cut)
  nodes and topology-critical nodes whose removal partitions the network;
- **Use case 3 — deanonymization**: when nodes' neighbour sets are
  distinguishing, they fingerprint the node, enabling the
  client-behind-NAT identification of Biryukov et al.

This module turns a measured graph into those assessments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from repro.errors import AnalysisError


@dataclass(frozen=True)
class EclipseTarget:
    """A node cheap to eclipse: all information flows through few links."""

    node: str
    degree: int
    neighbors: Tuple[str, ...]

    @property
    def attack_cost(self) -> int:
        """Number of connections an eclipse attacker must disable."""
        return self.degree


def eclipse_targets(graph: nx.Graph, max_degree: int = 3) -> List[EclipseTarget]:
    """Nodes vulnerable to targeted eclipse attacks (Use case 1).

    Returns nodes of degree <= ``max_degree``, cheapest targets first.
    """
    if graph.number_of_nodes() == 0:
        raise AnalysisError("empty graph")
    targets = [
        EclipseTarget(
            node=node,
            degree=graph.degree(node),
            neighbors=tuple(sorted(graph.neighbors(node))),
        )
        for node in graph.nodes()
        if graph.degree(node) <= max_degree
    ]
    return sorted(targets, key=lambda t: (t.degree, t.node))


@dataclass
class CriticalNodeReport:
    """Single-point-of-failure analysis (Use case 2)."""

    cut_nodes: List[str] = field(default_factory=list)
    supernodes: List[str] = field(default_factory=list)
    partition_impact: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        worst = max(self.partition_impact.values(), default=0)
        return (
            f"{len(self.cut_nodes)} cut nodes, {len(self.supernodes)} "
            f"supernodes, worst single-node partition strands {worst} nodes"
        )


def critical_nodes(
    graph: nx.Graph, supernode_quantile: float = 0.95
) -> CriticalNodeReport:
    """Find topology-critical nodes.

    - ``cut_nodes``: articulation points whose removal disconnects the
      graph (censorship/DoS leverage, per the DETER-style attacks the
      paper cites);
    - ``supernodes``: degree above the given quantile;
    - ``partition_impact``: per cut node, how many nodes end up stranded
      outside the largest surviving component.
    """
    if graph.number_of_nodes() == 0:
        raise AnalysisError("empty graph")
    cut_nodes = sorted(nx.articulation_points(graph))
    degrees = sorted(degree for _, degree in graph.degree())
    if degrees:
        index = min(len(degrees) - 1, int(supernode_quantile * len(degrees)))
        threshold = max(degrees[index], 1)
    else:
        threshold = 1
    supernodes = sorted(
        node for node, degree in graph.degree() if degree >= threshold
    )
    impact: Dict[str, int] = {}
    for node in cut_nodes:
        remaining = graph.copy()
        remaining.remove_node(node)
        if remaining.number_of_nodes() == 0:
            impact[node] = 0
            continue
        largest = max(
            (len(c) for c in nx.connected_components(remaining)), default=0
        )
        impact[node] = remaining.number_of_nodes() - largest
    return CriticalNodeReport(
        cut_nodes=cut_nodes, supernodes=supernodes, partition_impact=impact
    )


@dataclass(frozen=True)
class FingerprintReport:
    """Neighbour-set distinguishability (Use case 3)."""

    n_nodes: int
    unique_fingerprints: int
    collision_groups: Tuple[Tuple[str, ...], ...]

    @property
    def uniqueness(self) -> float:
        """Fraction of nodes whose neighbour set is globally unique."""
        if self.n_nodes == 0:
            return 0.0
        colliding = sum(len(group) for group in self.collision_groups)
        return (self.n_nodes - colliding) / self.n_nodes

    def summary(self) -> str:
        return (
            f"{self.unique_fingerprints}/{self.n_nodes} distinct neighbour "
            f"sets; {self.uniqueness:.0%} of nodes uniquely fingerprintable"
        )


def neighbor_fingerprints(graph: nx.Graph) -> FingerprintReport:
    """How identifying are nodes' neighbour sets?

    A node whose neighbour set is unique can be re-identified by a passive
    observer of its connections — the precondition of the deanonymization
    attack the paper describes (identify a client node by its server-node
    neighbours, then link transaction origins to it).
    """
    if graph.number_of_nodes() == 0:
        raise AnalysisError("empty graph")
    by_fingerprint: Dict[FrozenSet[str], List[str]] = {}
    for node in graph.nodes():
        fingerprint = frozenset(graph.neighbors(node))
        by_fingerprint.setdefault(fingerprint, []).append(node)
    collisions = tuple(
        tuple(sorted(group))
        for group in by_fingerprint.values()
        if len(group) > 1
    )
    return FingerprintReport(
        n_nodes=graph.number_of_nodes(),
        unique_fingerprints=len(by_fingerprint),
        collision_groups=collisions,
    )


def partition_resilience_score(graph: nx.Graph, removals: int = 3) -> float:
    """Fraction of nodes still in the largest component after greedily
    removing the ``removals`` highest-degree nodes (a simple partition-
    attack stress test; higher is more resilient)."""
    if graph.number_of_nodes() <= removals:
        raise AnalysisError("graph too small for the requested removals")
    stressed = graph.copy()
    for _ in range(removals):
        node, _ = max(stressed.degree(), key=lambda item: item[1])
        stressed.remove_node(node)
    if stressed.number_of_nodes() == 0:
        return 0.0
    largest = max((len(c) for c in nx.connected_components(stressed)), default=0)
    return largest / stressed.number_of_nodes()
