"""The graph statistics of Tables 4, 9 and 10.

One :class:`GraphMetrics` record per graph, with exactly the paper's rows:

- diameter, periphery size, radius, center size, mean eccentricity;
- clustering coefficient, transitivity;
- degree assortativity;
- clique number (count of maximal cliques, which is what the paper's
  "60.75 unique cliques detected" / "274775" values are — clearly counts,
  not maximum clique sizes);
- modularity of the best partition (Louvain).

Distance statistics are computed on the largest connected component when
the graph is disconnected (measured graphs can miss low-degree nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from repro.errors import AnalysisError


@dataclass(frozen=True)
class GraphMetrics:
    """All Table 4-style statistics for one graph."""

    name: str
    n_nodes: int
    n_edges: int
    diameter: int
    periphery_size: int
    radius: int
    center_size: int
    mean_eccentricity: float
    clustering_coefficient: float
    transitivity: float
    degree_assortativity: float
    clique_count: int
    modularity: float

    @property
    def average_degree(self) -> float:
        return 0.0 if self.n_nodes == 0 else 2.0 * self.n_edges / self.n_nodes

    def as_row(self) -> dict:
        """Ordered mapping matching the paper's table rows."""
        return {
            "Diameter": self.diameter,
            "Periphery size": self.periphery_size,
            "Radius": self.radius,
            "Center size": self.center_size,
            "Eccentricity": round(self.mean_eccentricity, 3),
            "Clustering coefficient": round(self.clustering_coefficient, 4),
            "Transitivity": round(self.transitivity, 4),
            "Degree assortativity": round(self.degree_assortativity, 4),
            "Clique number": self.clique_count,
            "Modularity": round(self.modularity, 4),
        }


def _largest_component(graph: nx.Graph) -> nx.Graph:
    if nx.is_connected(graph):
        return graph
    nodes = max(nx.connected_components(graph), key=len)
    return graph.subgraph(nodes).copy()


def _assortativity(graph: nx.Graph) -> float:
    """Degree assortativity; 0.0 for degenerate (regular/trivial) graphs
    where the coefficient is undefined (NaN with a numpy warning)."""
    import warnings

    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            value = nx.degree_assortativity_coefficient(graph)
    except (ValueError, ZeroDivisionError):
        return 0.0
    if value != value:  # NaN
        return 0.0
    return float(value)


def _modularity(graph: nx.Graph, seed: int) -> float:
    """Modularity of the Louvain best partition (Blondel et al. 2008)."""
    if graph.number_of_edges() == 0:
        return 0.0
    communities = nx.community.louvain_communities(graph, seed=seed)
    return nx.community.modularity(graph, communities)


def compute_metrics(
    graph: nx.Graph, name: str = "measured", seed: int = 0
) -> GraphMetrics:
    """Compute the full Table 4 statistic set for one graph."""
    if graph.number_of_nodes() == 0:
        raise AnalysisError("cannot compute metrics of an empty graph")
    component = _largest_component(graph)
    eccentricity = nx.eccentricity(component)
    diameter = max(eccentricity.values())
    radius = min(eccentricity.values())
    periphery = [n for n, e in eccentricity.items() if e == diameter]
    center = [n for n, e in eccentricity.items() if e == radius]
    return GraphMetrics(
        name=name,
        n_nodes=graph.number_of_nodes(),
        n_edges=graph.number_of_edges(),
        diameter=diameter,
        periphery_size=len(periphery),
        radius=radius,
        center_size=len(center),
        mean_eccentricity=sum(eccentricity.values()) / len(eccentricity),
        clustering_coefficient=nx.average_clustering(graph),
        transitivity=nx.transitivity(graph),
        degree_assortativity=_assortativity(graph),
        clique_count=count_maximal_cliques(graph),
        modularity=_modularity(graph, seed),
    )


def count_maximal_cliques(graph: nx.Graph, cap: Optional[int] = 5_000_000) -> int:
    """Number of maximal cliques (capped for pathological graphs)."""
    count = 0
    for _ in nx.find_cliques(graph):
        count += 1
        if cap is not None and count >= cap:
            break
    return count
