"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables report;
these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a list of row mappings as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "-" * len(header)
    body = [
        "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        for row in rows
    ]
    lines = ([title, header, separator] if title else [header, separator]) + body
    return "\n".join(lines)


def render_measurement_diff(
    measured: "set[frozenset]",
    truth: "set[frozenset]",
    limit: int = 20,
) -> str:
    """List false negatives/positives between a measured edge set and the
    ground truth — the debugging view behind every precision/recall score."""
    missed = sorted(tuple(sorted(e)) for e in truth - measured)
    phantom = sorted(tuple(sorted(e)) for e in measured - truth)
    lines = [
        f"true={len(truth)} measured={len(measured)} "
        f"missed={len(missed)} phantom={len(phantom)}"
    ]
    for label, edges in (("MISSED", missed), ("PHANTOM", phantom)):
        for a, b in edges[:limit]:
            lines.append(f"  {label:<8} {a} -- {b}")
        if len(edges) > limit:
            lines.append(f"  {label:<8} ... and {len(edges) - limit} more")
    return "\n".join(lines)


def render_comparison(
    table: Dict[str, Dict[str, float]], title: str = ""
) -> str:
    """Render a Table 4-style comparison: one column per graph, one row per
    statistic."""
    column_names = list(table.keys())
    statistic_names: List[str] = list(next(iter(table.values())).keys())
    rows = []
    for statistic in statistic_names:
        row: Dict[str, object] = {"Statistic": statistic}
        for column in column_names:
            row[column] = table[column].get(statistic, "")
        rows.append(row)
    return render_table(rows, columns=["Statistic"] + column_names, title=title)
