"""Propagation-delay measurement (Section 3, use cases 4 and 5).

A miner whose blocks propagate slowly loses block races and revenue
(use case 4); a client wants an RPC relay whose transactions reach miners
fast (use case 5). Both decisions need per-node propagation profiles on the
*active* topology — which is exactly what TopoShot recovers.

This module measures those profiles in the simulator: inject probes (or
mine blocks) at an origin and record first-arrival times across the
network via node observers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import AnalysisError
from repro.eth.account import Wallet
from repro.eth.chain import Block
from repro.eth.miner import Miner
from repro.eth.network import Network
from repro.eth.transaction import Transaction, TransactionFactory, gwei


@dataclass
class PropagationProfile:
    """First-arrival delays from one origin, over one or more probes."""

    origin: str
    delays: Dict[str, List[float]] = field(default_factory=dict)
    probes: int = 0

    def _all_delays(self) -> List[float]:
        return [d for samples in self.delays.values() for d in samples]

    @property
    def coverage(self) -> float:
        """Fraction of (node, probe) pairs that ever saw the probe."""
        possible = len(self.delays) * self.probes
        return 0.0 if possible == 0 else len(self._all_delays()) / possible

    def median_delay(self) -> float:
        samples = sorted(self._all_delays())
        if not samples:
            raise AnalysisError("no arrivals recorded")
        return samples[len(samples) // 2]

    def percentile_delay(self, q: float) -> float:
        """q in [0, 1]; e.g. 0.9 for the tail that loses block races."""
        samples = sorted(self._all_delays())
        if not samples:
            raise AnalysisError("no arrivals recorded")
        index = min(len(samples) - 1, int(math.ceil(q * len(samples))) - 1)
        return samples[max(0, index)]

    def node_median(self, node_id: str) -> Optional[float]:
        samples = sorted(self.delays.get(node_id, []))
        return samples[len(samples) // 2] if samples else None

    def summary(self) -> str:
        return (
            f"from {self.origin}: median {self.median_delay() * 1000:.0f} ms, "
            f"p90 {self.percentile_delay(0.9) * 1000:.0f} ms, "
            f"coverage {self.coverage:.0%} over {self.probes} probe(s)"
        )


def measure_tx_propagation(
    network: Network,
    origin: str,
    probes: int = 3,
    wait: float = 10.0,
    price: Optional[int] = None,
    wallet: Optional[Wallet] = None,
) -> PropagationProfile:
    """Inject ``probes`` transactions at ``origin``; record first arrivals
    at every other measurable node."""
    wallet = wallet or Wallet(f"prop-{origin}-{network.sim.now:.3f}")
    factory = TransactionFactory()
    targets = [nid for nid in network.measurable_node_ids() if nid != origin]
    profile = PropagationProfile(
        origin=origin, delays={nid: [] for nid in targets}, probes=probes
    )

    observers = []
    for node_id in targets:
        def observe(_from, tx, result, nid=node_id):
            if result.admitted and tx.hash in pending_probe:
                profile.delays[nid].append(
                    network.sim.now - pending_probe[tx.hash]
                )

        network.node(node_id).tx_observers.append(observe)
        observers.append((node_id, observe))

    pending_probe: Dict[str, float] = {}
    if price is None:
        pool_median = network.node(origin).mempool.median_pending_price()
        price = int((pool_median or gwei(1.0)) * 1.5)
    for _ in range(probes):
        probe = factory.transfer(wallet.fresh_account(), gas_price=price)
        pending_probe[probe.hash] = network.sim.now
        network.node(origin).submit_transaction(probe)
        network.run(wait)

    for node_id, observe in observers:
        network.node(node_id).tx_observers.remove(observe)
    return profile


def measure_block_propagation(
    network: Network,
    miner_node: str,
    blocks: int = 3,
    wait: float = 10.0,
) -> PropagationProfile:
    """Mine ``blocks`` empty-interval blocks at ``miner_node`` and measure
    their first arrival at every other node (use case 4's latency)."""
    targets = [
        nid for nid in network.measurable_node_ids() if nid != miner_node
    ]
    profile = PropagationProfile(
        origin=miner_node, delays={nid: [] for nid in targets}, probes=blocks
    )
    mined_at: Dict[str, float] = {}

    observers = []
    for node_id in targets:
        def observe(_from, block: Block, nid=node_id):
            if block.hash in mined_at:
                profile.delays[nid].append(network.sim.now - mined_at[block.hash])

        network.node(node_id).block_observers.append(observe)
        observers.append((node_id, observe))

    miner = Miner(network.node(miner_node), network.chain, block_interval=wait)
    for _ in range(blocks):
        block = miner.mine_block()
        mined_at[block.hash] = network.sim.now
        network.run(wait)

    for node_id, observe in observers:
        network.node(node_id).block_observers.remove(observe)
    return profile


def rank_origins_by_delay(
    network: Network,
    candidates: Sequence[str],
    probes: int = 2,
    wait: float = 8.0,
) -> List[PropagationProfile]:
    """Profile several candidate origins (e.g. relay services or mining
    pools) and return them best-connected first — the informed choice of
    use cases 4/5."""
    profiles = [
        measure_tx_propagation(network, origin, probes=probes, wait=wait)
        for origin in candidates
    ]
    return sorted(profiles, key=lambda p: p.median_delay())
