"""Random-graph comparison tables (Tables 4, 9, 10).

The paper generates each baseline 10 times and reports averaged properties;
:func:`metrics_for_baselines` does the same (``trials=10`` by default,
smaller in quick tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import networkx as nx

from repro.analysis.metrics import GraphMetrics, compute_metrics
from repro.netgen.topology import (
    average_degree,
    ba_graph,
    configuration_model_graph,
    degree_sequence,
    er_graph,
)


@dataclass
class AveragedMetrics:
    """Mean of each statistic over several baseline samples."""

    name: str
    samples: List[GraphMetrics] = field(default_factory=list)

    def mean(self, attribute: str) -> float:
        values = [getattr(sample, attribute) for sample in self.samples]
        return sum(values) / len(values)

    def as_row(self) -> Dict[str, float]:
        keys = [
            ("Diameter", "diameter"),
            ("Periphery size", "periphery_size"),
            ("Radius", "radius"),
            ("Center size", "center_size"),
            ("Eccentricity", "mean_eccentricity"),
            ("Clustering coefficient", "clustering_coefficient"),
            ("Transitivity", "transitivity"),
            ("Degree assortativity", "degree_assortativity"),
            ("Clique number", "clique_count"),
            ("Modularity", "modularity"),
        ]
        return {label: round(self.mean(attr), 4) for label, attr in keys}


def metrics_for_baselines(
    measured: nx.Graph, trials: int = 10, seed: int = 0
) -> Dict[str, AveragedMetrics]:
    """ER/CM/BA statistics matched to a measured graph, averaged over
    ``trials`` independently seeded generations."""
    n = measured.number_of_nodes()
    m = measured.number_of_edges()
    degrees = degree_sequence(measured)
    avg = average_degree(measured)
    out: Dict[str, AveragedMetrics] = {
        "ER": AveragedMetrics("ER"),
        "CM": AveragedMetrics("CM"),
        "BA": AveragedMetrics("BA"),
    }
    for trial in range(trials):
        trial_seed = seed * 1000 + trial
        out["ER"].samples.append(
            compute_metrics(er_graph(n, m, seed=trial_seed), "ER", seed=trial_seed)
        )
        out["CM"].samples.append(
            compute_metrics(
                configuration_model_graph(degrees, seed=trial_seed),
                "CM",
                seed=trial_seed,
            )
        )
        out["BA"].samples.append(
            compute_metrics(ba_graph(n, avg, seed=trial_seed), "BA", seed=trial_seed)
        )
    return out


def comparison_table(
    measured: nx.Graph,
    name: str = "Measured",
    trials: int = 10,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Full Table 4-style comparison: measured column + ER/CM/BA columns."""
    columns: Dict[str, Dict[str, float]] = {}
    columns[name] = compute_metrics(measured, name, seed=seed).as_row()
    for baseline_name, averaged in metrics_for_baselines(
        measured, trials=trials, seed=seed
    ).items():
        columns[baseline_name] = averaged.as_row()
    return columns


def modularity_lower_than_baselines(
    table: Dict[str, Dict[str, float]], measured_name: str = "Measured"
) -> bool:
    """The paper's headline finding: measured testnets have modularity
    markedly below every random baseline (partition resilience)."""
    measured = table[measured_name]["Modularity"]
    baselines = [
        row["Modularity"] for name, row in table.items() if name != measured_name
    ]
    return all(measured < value for value in baselines)
