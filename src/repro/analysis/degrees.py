"""Degree-distribution summaries (Figures 6, 8, 9 and the Goerli
large-degree table of Appendix D)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import AnalysisError


@dataclass
class DegreeDistribution:
    """Histogram plus the summary statistics the paper quotes."""

    histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return sum(self.histogram.values())

    @property
    def max_degree(self) -> int:
        return max(self.histogram) if self.histogram else 0

    @property
    def min_degree(self) -> int:
        return min(self.histogram) if self.histogram else 0

    @property
    def average(self) -> float:
        if not self.histogram:
            return 0.0
        total = sum(degree * count for degree, count in self.histogram.items())
        return total / self.n_nodes

    def share_with_degree(self, degree: int) -> float:
        """Fraction of nodes with exactly this degree (Figure 6's "4% of
        nodes have degree 10" style of statement)."""
        if self.n_nodes == 0:
            return 0.0
        return self.histogram.get(degree, 0) / self.n_nodes

    def share_at_most(self, degree: int) -> float:
        if self.n_nodes == 0:
            return 0.0
        covered = sum(c for d, c in self.histogram.items() if d <= degree)
        return covered / self.n_nodes

    def nodes_in_range(self, low: int, high: int) -> int:
        """Count of nodes with degree in ``[low, high]`` (the Goerli
        large-degree table)."""
        return sum(c for d, c in self.histogram.items() if low <= d <= high)

    def buckets(self, edges: List[int]) -> List[Tuple[str, int]]:
        """Bucketed counts, e.g. ``edges=[100, 150, 200]`` produces the
        Appendix D degree-range table."""
        rows: List[Tuple[str, int]] = []
        for low, high in zip(edges, edges[1:]):
            rows.append((f"{low}-{high}", self.nodes_in_range(low, high - 1)))
        return rows

    def ascii_plot(self, width: int = 50, max_rows: int = 40) -> str:
        """Terminal-friendly rendering of the histogram."""
        if not self.histogram:
            return "(empty)"
        peak = max(self.histogram.values())
        lines = []
        for degree in sorted(self.histogram)[:max_rows]:
            count = self.histogram[degree]
            bar = "#" * max(1, round(width * count / peak))
            lines.append(f"deg {degree:>4} | {bar} {count}")
        return "\n".join(lines)


def degree_distribution(graph: nx.Graph) -> DegreeDistribution:
    """Histogram of node degrees."""
    if graph.number_of_nodes() == 0:
        raise AnalysisError("cannot summarize degrees of an empty graph")
    histogram: Dict[int, int] = {}
    for _, degree in graph.degree():
        histogram[degree] = histogram.get(degree, 0) + 1
    return DegreeDistribution(histogram=dict(sorted(histogram.items())))
