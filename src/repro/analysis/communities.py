"""Community detection (Table 5; Appendix D community summaries).

Uses the Louvain method (Blondel et al. 2008), as the paper does via the
python-louvain/NetworkX tooling, and reports per-community rows: node
count, intra-community edge count and density, inter-community edge count,
average degree and the share of degree-1 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import networkx as nx

from repro.errors import AnalysisError


@dataclass(frozen=True)
class CommunityRow:
    """One row of the Table 5 community breakdown."""

    index: int
    n_nodes: int
    intra_edges: int
    inter_edges: int
    density: float  # intra edges / possible intra edges
    average_degree: float  # within the whole graph
    degree_one_share: float

    def format(self) -> str:
        return (
            f"{self.index:>5} {self.n_nodes:>7} "
            f"{self.intra_edges:>6} ({self.density * 100:.1f}%) "
            f"{self.inter_edges:>6} {self.average_degree:>8.1f} "
            f"{self.degree_one_share * 100:>6.1f}%"
        )


def detect_communities(graph: nx.Graph, seed: int = 0) -> List[CommunityRow]:
    """Louvain partition of ``graph``, largest community first."""
    if graph.number_of_nodes() == 0:
        raise AnalysisError("cannot detect communities of an empty graph")
    partitions = nx.community.louvain_communities(graph, seed=seed)
    rows: List[CommunityRow] = []
    for community in partitions:
        members = set(community)
        intra = graph.subgraph(members).number_of_edges()
        inter = sum(
            1
            for node in members
            for neighbor in graph.neighbors(node)
            if neighbor not in members
        )
        possible = len(members) * (len(members) - 1) // 2
        degrees = [graph.degree(node) for node in members]
        rows.append(
            CommunityRow(
                index=0,  # re-indexed below
                n_nodes=len(members),
                intra_edges=intra,
                inter_edges=inter,
                density=0.0 if possible == 0 else intra / possible,
                average_degree=sum(degrees) / len(degrees),
                degree_one_share=sum(1 for d in degrees if d == 1) / len(degrees),
            )
        )
    rows.sort(key=lambda row: row.n_nodes, reverse=True)
    return [
        CommunityRow(
            index=i + 1,
            n_nodes=row.n_nodes,
            intra_edges=row.intra_edges,
            inter_edges=row.inter_edges,
            density=row.density,
            average_degree=row.average_degree,
            degree_one_share=row.degree_one_share,
        )
        for i, row in enumerate(rows)
    ]


def community_table(rows: List[CommunityRow]) -> str:
    """Render the Table 5 layout."""
    header = (
        f"{'comm.':>5} {'#nodes':>7} {'intra (density)':>15} "
        f"{'inter':>6} {'avg deg':>8} {'deg-1':>7}"
    )
    return "\n".join([header, "-" * len(header)] + [row.format() for row in rows])
