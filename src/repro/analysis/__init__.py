"""Graph-theoretic analysis of measured topologies (Section 6.2).

Computes every statistic the paper tabulates — distances (diameter,
radius, periphery/center sizes, eccentricity), clustering (coefficient,
transitivity), degree assortativity, clique counts, modularity — plus the
random-graph comparisons (ER/CM/BA) of Tables 4/9/10, the Louvain community
breakdown of Table 5 and the degree histograms of Figures 6/8/9.
"""

from repro.analysis.communities import CommunityRow, detect_communities
from repro.analysis.degrees import DegreeDistribution, degree_distribution
from repro.analysis.metrics import GraphMetrics, compute_metrics
from repro.analysis.randomgraphs import comparison_table, metrics_for_baselines
from repro.analysis.report import render_comparison, render_table
from repro.analysis.security import (
    critical_nodes,
    eclipse_targets,
    neighbor_fingerprints,
    partition_resilience_score,
)

__all__ = [
    "CommunityRow",
    "DegreeDistribution",
    "GraphMetrics",
    "comparison_table",
    "compute_metrics",
    "critical_nodes",
    "degree_distribution",
    "detect_communities",
    "eclipse_targets",
    "metrics_for_baselines",
    "neighbor_fingerprints",
    "partition_resilience_score",
    "render_comparison",
    "render_table",
]
