"""Command-line interface.

Subcommands mirroring the main workflows::

    toposhot-repro measure --preset ropsten --seed 1 --repeats 3
    toposhot-repro arena --nodes 24 --seed 7 --output BENCH_arena.json
    toposhot-repro profile
    toposhot-repro schedule --nodes 500 --budget 2000
    toposhot-repro estimate-cost --nodes 8000 --eth-price 2700
    toposhot-repro serve --state-dir service-state
    toposhot-repro submit --tenant alice --nodes 16 --wait

Also runnable as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.degrees import degree_distribution
from repro.analysis.randomgraphs import (
    comparison_table,
    modularity_lower_than_baselines,
)
from repro.analysis.report import render_comparison
from repro.core.campaign import TopoShot
from repro.core.cost import MainnetEstimate, PAPER_COST_PER_PAIR_ETHER
from repro.core.profiler import profile_client
from repro.core.schedule import build_schedule, expected_iteration_count
from repro.eth.policies import ALETH, BESU, GETH, NETHERMIND, PARITY
from repro.netgen.ethereum import (
    generate_network,
    goerli_like,
    quick_network,
    rinkeby_like,
    ropsten_like,
)
from repro.netgen.workloads import SHAPES, prefill_mempools
from repro.sim.faults import FaultPlan

PRESETS = {
    "ropsten": ropsten_like,
    "rinkeby": rinkeby_like,
    "goerli": goerli_like,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="toposhot-repro",
        description="TopoShot (IMC'21) reproduction: measure simulated "
        "Ethereum topologies via replacement transactions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    measure = sub.add_parser(
        "measure", help="run a full topology measurement campaign"
    )
    measure.add_argument(
        "--preset", choices=sorted(PRESETS), default=None,
        help="testnet preset; omit for a generic quick network",
    )
    measure.add_argument("--nodes", type=int, default=24,
                         help="node count for the generic network")
    measure.add_argument("--seed", type=int, default=0)
    measure.add_argument("--repeats", type=int, default=1,
                         help="measurements per link (union of positives)")
    measure.add_argument("--group-size", type=int, default=None,
                         help="override the schedule group size K")
    measure.add_argument("--analyze", action="store_true",
                         help="print Table 4-style analysis of the result")
    measure.add_argument("--no-preprocess", action="store_true")
    measure.add_argument("--output", type=str, default=None,
                         help="write the measurement to this JSON file")
    measure.add_argument("--export-graph", type=str, default=None,
                         help="write the measured graph (edge list) here")
    faults = measure.add_argument_group(
        "fault injection", "measure under adverse network conditions"
    )
    faults.add_argument("--loss", type=float, default=0.0, metavar="RATE",
                        help="per-message loss probability on every link")
    faults.add_argument("--churn", type=float, default=0.0, metavar="RATE",
                        help="link disconnect events per simulated second")
    faults.add_argument("--crash-rate", type=float, default=0.0, metavar="RATE",
                        help="node crash events per simulated second")
    faults.add_argument("--max-retries", type=int, default=0,
                        help="retry budget for failed/ambiguous probes")
    faults.add_argument(
        "--rpc-fault-rate", type=float, default=0.0, metavar="RATE",
        help="unreliable RPC plane: per-call timeout/error probability plus "
             "stale/truncated snapshots at the same rate (see docs/rpc.md)")
    faults.add_argument(
        "--rpc-rate-limit", type=float, default=0.0, metavar="PER_SEC",
        help="token-bucket RPC rate limit per endpoint (0 disables)")
    faults.add_argument(
        "--rpc-flap-rate", type=float, default=0.0, metavar="RATE",
        help="RPC connection flap events per simulated second")
    faults.add_argument(
        "--rpc-raw-client", action="store_true",
        help="use the naive single-attempt RPC client (no deadlines, "
             "retries, hedging or validation) — for A/B degradation runs")
    faults.add_argument(
        "--adaptive-flood", action="store_true",
        help="resize eviction floods from observed pool occupancy "
             "(storm-aware Z; see docs/rpc.md)")
    faults.add_argument("--checkpoint", type=str, default=None, metavar="FILE",
                        help="write a resumable checkpoint after each iteration")
    faults.add_argument("--resume", action="store_true",
                        help="continue from --checkpoint instead of starting over")
    adversarial = measure.add_argument_group(
        "adversarial robustness",
        "Byzantine peers, runtime invariants and precision hardening "
        "(see docs/adversarial.md)",
    )
    adversarial.add_argument(
        "--byzantine-mix", type=str, default=None, metavar="SPEC",
        help="install misbehaving peers, e.g. 'spoof_relay:0.05,censor:0.05' "
             "(kinds: censor, lazy_relay, spoof_relay, nonconforming_replacer, "
             "duplicate_spammer, stale_client)",
    )
    adversarial.add_argument(
        "--byzantine-frac", type=float, default=None, metavar="FRAC",
        help="shorthand: spread FRAC of nodes evenly over all behavior kinds",
    )
    adversarial.add_argument(
        "--invariants", action="store_true",
        help="install the runtime invariant checker and report violations",
    )
    adversarial.add_argument(
        "--cross-validate", type=int, default=None, metavar="N",
        help="re-probe suspect edges up to N times; quarantine unconfirmed ones",
    )
    parallel = measure.add_argument_group(
        "parallel execution",
        "deterministic sharded execution on a process pool "
        "(see docs/parallelism.md)",
    )
    parallel.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the campaign sharded on N worker processes; output is "
             "bit-identical for any N (use 1 for the in-process baseline)",
    )
    parallel.add_argument(
        "--shards", type=int, default=None, metavar="S",
        help="override the shard count (default: min(iterations, 8)); "
             "part of the campaign identity, unlike --workers",
    )
    observability = measure.add_argument_group(
        "observability", "export metrics and a structured event trace"
    )
    observability.add_argument(
        "--metrics-out", type=str, default=None, metavar="FILE",
        help="write campaign metrics here; format from the suffix "
             "(.jsonl/.json, .prom/.txt, .csv)",
    )
    observability.add_argument(
        "--metrics-format", choices=("jsonl", "prometheus", "csv"),
        default=None,
        help="override the metrics format inferred from --metrics-out",
    )
    observability.add_argument(
        "--trace-out", type=str, default=None, metavar="FILE",
        help="write the structured event log here as JSON-lines",
    )

    arena = sub.add_parser(
        "arena",
        help="run every inference protocol against one identical network "
             "and score them head-to-head (see docs/arena.md)",
    )
    arena.add_argument("--nodes", type=int, default=24)
    arena.add_argument("--seed", type=int, default=0)
    arena.add_argument(
        "--targets", type=int, default=None, metavar="T",
        help="measure edges among the first T measurable nodes only "
             "(default: all of them; required in practice beyond ~32 nodes "
             "because txprobe probes every pair serially)",
    )
    arena.add_argument(
        "--outbound-dials", type=int, default=None, metavar="D",
        help="override the topology's outbound dial quota (sparser graphs "
             "separate the protocols more clearly)",
    )
    arena.add_argument(
        "--protocols", type=str, default=None, metavar="LIST",
        help="comma-separated subset of: toposhot,txprobe,timing,findnode,"
             "census,dethna,ethna (default: all seven)",
    )
    arena.add_argument("--toposhot-repeats", type=int, default=1)
    arena.add_argument(
        "--toposhot-cross-validate", type=int, default=3, metavar="N",
        help="1-of-N timing-race re-probes for suspect TopoShot edges "
             "(0 disables; default 3)",
    )
    arena.add_argument("--dethna-rounds", type=int, default=12)
    arena.add_argument("--ethna-txs", type=int, default=60)
    arena.add_argument("--timing-probes", type=int, default=3)
    arena_faults = arena.add_argument_group(
        "fault injection", "every protocol runs under the same fault plan"
    )
    arena_faults.add_argument("--loss", type=float, default=0.0, metavar="RATE")
    arena_faults.add_argument("--churn", type=float, default=0.0, metavar="RATE")
    arena_faults.add_argument("--crash-rate", type=float, default=0.0,
                              metavar="RATE")
    arena_adv = arena.add_argument_group(
        "adversarial robustness",
        "every protocol faces the same Byzantine draw (docs/adversarial.md)",
    )
    arena_adv.add_argument("--byzantine-mix", type=str, default=None,
                           metavar="SPEC")
    arena_adv.add_argument("--byzantine-frac", type=float, default=None,
                           metavar="FRAC")
    arena.add_argument(
        "--output", type=str, default=None, metavar="FILE",
        help="write the scorecard JSON here (BENCH_arena.json convention)",
    )
    arena_obs = arena.add_argument_group(
        "observability", "export per-protocol arena metrics"
    )
    arena_obs.add_argument("--metrics-out", type=str, default=None,
                           metavar="FILE")
    arena_obs.add_argument(
        "--metrics-format", choices=("jsonl", "prometheus", "csv"),
        default=None,
    )

    monitor = sub.add_parser(
        "monitor",
        help="continuous topology tracking: one full base snapshot, then "
             "O(churn) incremental delta rounds (see docs/workloads.md)",
    )
    monitor.add_argument("--nodes", type=int, default=24)
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument(
        "--targets", type=int, default=None, metavar="T",
        help="track edges among the first T measurable nodes only "
             "(default: all of them)",
    )
    monitor.add_argument("--rounds", type=int, default=3,
                         help="delta rounds after the base snapshot")
    monitor.add_argument(
        "--churn", type=float, default=0.0, metavar="FRAC",
        help="rewire this fraction of links between rounds (0 = static)",
    )
    monitor.add_argument(
        "--staleness-ttl", type=float, default=None, metavar="SECONDS",
        help="re-probe edges not confirmed for this long (default: only "
             "churn signals trigger re-probes)",
    )
    monitor.add_argument(
        "--max-pairs", type=int, default=None, metavar="N",
        help="probe budget per delta round; the overflow stays flagged",
    )
    monitor.add_argument(
        "--fee-market", action="store_true",
        help="install the live fee market (floor-aware probe pricing)",
    )
    monitor.add_argument(
        "--workload", choices=sorted(SHAPES), default=None,
        help="drive a batched background workload between delta rounds; "
             "probes themselves run in inflow lulls (concurrent pending "
             "inflow evicts the future-transaction floods, Section 6.2.1)",
    )
    monitor.add_argument(
        "--workload-rate", type=float, default=10000.0, metavar="TXS",
        help="offered tx/s for --workload",
    )
    monitor.add_argument(
        "--load-window", type=float, default=10.0, metavar="SECONDS",
        help="how long the workload runs between delta rounds",
    )
    monitor.add_argument(
        "--stream-out", type=str, default=None, metavar="FILE",
        help="write one ChurnReport JSON line per delta round here "
             "(default: stdout)",
    )
    monitor_obs = monitor.add_argument_group(
        "observability", "export monitor metrics and an event trace"
    )
    monitor_obs.add_argument("--metrics-out", type=str, default=None,
                             metavar="FILE")
    monitor_obs.add_argument(
        "--metrics-format", choices=("jsonl", "prometheus", "csv"),
        default=None,
    )
    monitor_obs.add_argument("--trace-out", type=str, default=None,
                             metavar="FILE")

    sub.add_parser("profile", help="Table 3: profile the five clients")

    schedule = sub.add_parser(
        "schedule", help="inspect the parallel schedule for (N, K)"
    )
    schedule.add_argument("--nodes", type=int, required=True)
    schedule.add_argument("--group-size", type=int, default=None)
    schedule.add_argument("--budget", type=int, default=2000,
                          help="mempool slot budget (paper: 2000)")

    analyze = sub.add_parser(
        "analyze", help="re-analyze a saved measurement JSON"
    )
    analyze.add_argument("measurement", type=str,
                         help="path to a JSON file written by 'measure --output'")
    analyze.add_argument("--communities", action="store_true")
    analyze.add_argument("--security", action="store_true")

    cost = sub.add_parser(
        "estimate-cost", help="full-network measurement cost extrapolation"
    )
    cost.add_argument("--nodes", type=int, default=8000)
    cost.add_argument("--eth-price", type=float, default=2700.0)
    cost.add_argument(
        "--per-pair", type=float, default=PAPER_COST_PER_PAIR_ETHER,
        help="Ether cost per measured pair (paper: 7.1e-4)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the resilient measurement service (see docs/service.md)",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="0 binds an ephemeral port; the actual endpoint is written to "
             "STATE_DIR/endpoint.json either way",
    )
    serve.add_argument(
        "--state-dir", type=str, default="service-state", metavar="DIR",
        help="journal, checkpoints and endpoint file live here",
    )
    serve.add_argument("--max-concurrent", type=int, default=2,
                       help="executor slots (jobs running at once)")
    serve.add_argument(
        "--config", type=str, default=None, metavar="FILE",
        help="JSON ServiceConfig overriding the flags (quotas, breaker, "
             "backoff; see docs/service.md)",
    )
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip journal fsyncs (tests only; crash-unsafe)")
    serve.add_argument("--obs", action="store_true",
                       help="enable observability (adds obs to /v1/metrics)")

    submit = sub.add_parser(
        "submit", help="submit a job to a running measurement service"
    )
    submit.add_argument(
        "--state-dir", type=str, default="service-state", metavar="DIR",
        help="find the service via DIR/endpoint.json",
    )
    submit.add_argument("--tenant", type=str, required=True)
    submit.add_argument("--kind", choices=("measure", "synthetic"),
                        default="measure")
    submit.add_argument(
        "--params", type=str, default=None, metavar="JSON",
        help="kind-specific params as inline JSON (overrides --nodes/...)",
    )
    submit.add_argument("--nodes", type=int, default=24,
                        help="measure: network size")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--repeats", type=int, default=1)
    submit.add_argument("--workers", type=int, default=1)
    submit.add_argument("--deadline", type=float, default=None,
                        help="wall-clock seconds before the job times out "
                             "(partial results survive)")
    submit.add_argument("--max-attempts", type=int, default=3)
    submit.add_argument("--wait", action="store_true",
                        help="block until the job reaches a terminal state")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait limit in seconds")
    return parser


def _parse_behavior_mix(args: argparse.Namespace):
    """Resolve the --byzantine-* flags to a BehaviorMix (or None)."""
    from repro.eth.behaviors import BehaviorMix

    if args.byzantine_mix and args.byzantine_frac is not None:
        raise ValueError("--byzantine-mix and --byzantine-frac are mutually exclusive")
    if args.byzantine_mix:
        return BehaviorMix.from_spec(args.byzantine_mix)
    if args.byzantine_frac is not None:
        return BehaviorMix.uniform(args.byzantine_frac)
    return None


def _cmd_measure(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.workers is not None:
        return _cmd_measure_sharded(args)
    from repro.errors import BehaviorPlanError

    try:
        mix = _parse_behavior_mix(args)
    except (ValueError, BehaviorPlanError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.preset:
        network = generate_network(PRESETS[args.preset](seed=args.seed))
    else:
        network = quick_network(n_nodes=args.nodes, seed=args.seed)
    prefill_mempools(network)
    rpc_plan = None
    if args.rpc_fault_rate or args.rpc_rate_limit or args.rpc_flap_rate:
        from repro.sim.faults import RpcFaultPlan

        rpc_plan = RpcFaultPlan.uniform(
            args.rpc_fault_rate,
            rate_limit_per_second=args.rpc_rate_limit,
            flap_rate=args.rpc_flap_rate,
        )
    plan = FaultPlan(
        loss_rate=args.loss,
        churn_rate=args.churn,
        crash_rate=args.crash_rate,
        rpc=rpc_plan,
    )
    if plan.enabled:
        network.install_faults(plan)
        print(
            f"fault plan: loss={plan.loss_rate:.1%} "
            f"churn={plan.churn_rate}/s crash={plan.crash_rate}/s"
        )
        if rpc_plan is not None:
            print(
                f"rpc fault plan: fault={args.rpc_fault_rate:.1%} "
                f"rate-limit={rpc_plan.rate_limit_per_second}/s "
                f"flap={rpc_plan.flap_rate}/s"
            )
    if args.rpc_raw_client:
        from repro.eth.rpc import RAW_POLICY

        network.rpc_client(RAW_POLICY)
        print("rpc client: raw (single attempt, failures read as negatives)")
    if mix is not None and mix.enabled:
        behaviors = network.install_behaviors(mix)
        counts = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(behaviors.kind_counts().items())
        )
        print(f"byzantine mix: {counts or 'none drawn'}")
    checker = None
    if args.invariants:
        checker = network.install_invariants()
    obs = None
    if args.metrics_out or args.trace_out:
        from repro.obs import Observability

        obs = Observability()
    shot = TopoShot.attach(network, obs=obs)
    shot.config = shot.config.with_repeats(args.repeats)
    if args.max_retries:
        shot.config = shot.config.with_retries(args.max_retries)
    if args.cross_validate is not None:
        shot.config = shot.config.with_cross_validation(args.cross_validate)
    if args.adaptive_flood:
        shot.config = shot.config.with_adaptive_flood()
    print(
        f"measuring {len(network.measurable_node_ids())} nodes "
        f"(Z={shot.config.future_count}, R={shot.config.replace_bump:.1%})"
    )
    measurement = shot.measure_network(
        group_size=args.group_size,
        preprocess=not args.no_preprocess,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
    )
    if checker is not None:
        print()
        print(checker.summary())
    return _report_measurement(args, measurement, obs)


def _cmd_measure_sharded(args: argparse.Namespace) -> int:
    """The ``--workers N`` path: deterministic process-pool sharding.

    Output is bit-identical for every N (including ``--workers 1``), so
    the worker count is purely a wall-clock knob; see docs/parallelism.md.
    """
    from repro.core.parallel_exec import CampaignSpec, run_campaign
    from repro.netgen.ethereum import NetworkSpec

    if (
        args.byzantine_mix
        or args.byzantine_frac is not None
        or args.invariants
        or args.cross_validate is not None
    ):
        print(
            "--byzantine-mix/--byzantine-frac/--invariants/--cross-validate "
            "are not supported with --workers: the sharded executor resets "
            "shards from snapshots, which the invariant checker refuses and "
            "cross-validation would invalidate. Run without --workers.",
            file=sys.stderr,
        )
        return 2
    if (
        args.rpc_fault_rate
        or args.rpc_rate_limit
        or args.rpc_flap_rate
        or args.rpc_raw_client
        or args.adaptive_flood
    ):
        print(
            "--rpc-* and --adaptive-flood are not supported with --workers: "
            "the resilient RPC client and its fault plan keep per-endpoint "
            "state (breakers, token buckets, health scores) that sharding "
            "would reset mid-campaign. Run without --workers.",
            file=sys.stderr,
        )
        return 2
    if args.preset:
        network_spec = PRESETS[args.preset](seed=args.seed)
    else:
        network_spec = NetworkSpec(n_nodes=args.nodes, seed=args.seed)
    plan = FaultPlan(
        loss_rate=args.loss,
        churn_rate=args.churn,
        crash_rate=args.crash_rate,
    )
    if plan.enabled:
        print(
            f"fault plan: loss={plan.loss_rate:.1%} "
            f"churn={plan.churn_rate}/s crash={plan.crash_rate}/s"
        )
    campaign = CampaignSpec(
        network=network_spec,
        preprocess=not args.no_preprocess,
        group_size=args.group_size,
        repeats=args.repeats,
        max_retries=args.max_retries or None,
        fault_plan=plan if plan.enabled else None,
        n_shards=args.shards,
    )
    obs = None
    if args.metrics_out or args.trace_out:
        from repro.obs import Observability

        obs = Observability()
    print(
        f"measuring {network_spec.n_nodes} nodes, sharded campaign "
        f"(workers={args.workers}"
        + (f", shards={args.shards}" if args.shards else "")
        + ")"
    )
    measurement = run_campaign(
        campaign,
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        obs=obs,
    )
    return _report_measurement(args, measurement, obs)


def _report_measurement(args, measurement, obs) -> int:
    print()
    print(measurement.summary())
    if obs is not None:
        from repro.obs.export import write_events, write_metrics

        if args.metrics_out:
            path = write_metrics(
                obs.metrics, args.metrics_out, fmt=args.metrics_format
            )
            print(f"\nmetrics written to {path}")
        if args.trace_out:
            print(f"event trace written to {write_events(obs.events, args.trace_out)}")
    if args.output:
        from repro.io import save_measurement

        print(f"\nmeasurement written to {save_measurement(measurement, args.output)}")
    if args.export_graph:
        from repro.io import export_graph

        print(
            "graph written to "
            f"{export_graph(measurement.graph, args.export_graph)}"
        )
    if args.analyze:
        graph = measurement.graph
        print("\ndegree distribution:")
        print(degree_distribution(graph).ascii_plot(width=36, max_rows=20))
        table = comparison_table(graph, "Measured", trials=5, seed=args.seed)
        print()
        print(render_comparison(table, title="graph statistics vs ER/CM/BA"))
        print(
            "\nmodularity below all baselines: "
            f"{modularity_lower_than_baselines(table)}"
        )
    return 0


def _cmd_arena(args: argparse.Namespace) -> int:
    from repro.core.arena import PROTOCOLS, ArenaSpec, run_arena, write_arena_json
    from repro.errors import BehaviorPlanError

    protocols = PROTOCOLS
    if args.protocols:
        protocols = tuple(
            p.strip() for p in args.protocols.split(",") if p.strip()
        )
    try:
        spec = ArenaSpec(
            n_nodes=args.nodes,
            seed=args.seed,
            n_targets=args.targets,
            outbound_dials=args.outbound_dials,
            protocols=protocols,
            loss_rate=args.loss,
            churn_rate=args.churn,
            crash_rate=args.crash_rate,
            byzantine_spec=args.byzantine_mix,
            byzantine_frac=args.byzantine_frac,
            toposhot_repeats=args.toposhot_repeats,
            toposhot_cross_validate=args.toposhot_cross_validate,
            timing_probes=args.timing_probes,
            dethna_rounds=args.dethna_rounds,
            ethna_txs=args.ethna_txs,
        )
        spec.behavior_mix()  # validate the spec string up front
    except (ValueError, BehaviorPlanError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    obs = None
    if args.metrics_out:
        from repro.obs import Observability

        obs = Observability()
    print(
        f"arena: {len(spec.ordered_protocols)} protocols on {spec.n_nodes} "
        f"nodes (seed {spec.seed}"
        + (f", {spec.n_targets} targets" if spec.n_targets else "")
        + ")"
    )
    result = run_arena(
        spec, obs=obs, progress=lambda name: print(f"  running {name} ...")
    )
    print()
    print(result.summary())
    if args.output:
        print(f"\nscorecard written to {write_arena_json(result, args.output)}")
    if obs is not None:
        from repro.obs.export import write_metrics

        Path(args.metrics_out).parent.mkdir(parents=True, exist_ok=True)
        path = write_metrics(obs.metrics, args.metrics_out, fmt=args.metrics_format)
        print(f"metrics written to {path}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.core.monitor import TopologyMonitor, rewire_random_links
    from repro.netgen.workloads import BatchedWorkload

    network = quick_network(n_nodes=args.nodes, seed=args.seed)
    if args.fee_market:
        network.install_fee_market()
    prefill_mempools(network)
    obs = None
    if args.metrics_out or args.trace_out:
        from repro.obs import Observability

        obs = Observability()
    shot = TopoShot.attach(network, obs=obs)
    targets = list(network.measurable_node_ids())
    if args.targets is not None:
        targets = targets[: args.targets]

    workload = None
    if args.workload:
        workload = BatchedWorkload(
            network, SHAPES[args.workload](rate_per_second=args.workload_rate)
        )
        if obs is not None:
            from repro.obs.wiring import instrument_workload

            instrument_workload(obs, workload)
        print(
            f"workload: {args.workload} at {args.workload_rate:.0f} tx/s "
            f"for {args.load_window:.0f}s between rounds "
            "(batched, O(ticks) engine cost)"
        )

    stream = open(args.stream_out, "w") if args.stream_out else sys.stdout
    try:
        monitor = TopologyMonitor(
            shot, staleness_ttl=args.staleness_ttl, stream=stream
        )
        snapshot = monitor.take_snapshot(targets=targets, preprocess=False)
        print(
            f"base snapshot: {len(snapshot.edges)} edges among "
            f"{len(targets)} targets at t={snapshot.taken_at:.0f}s"
        )
        for round_no in range(1, args.rounds + 1):
            if workload is not None:
                # Traffic (and churn) happen between rounds; the probes
                # themselves run in inflow lulls — concurrent pending
                # inflow would evict the future floods (Section 6.2.1).
                workload.start()
                network.sim.run(until=network.sim.now + args.load_window)
                workload.stop()
                # Drain the workload's leftovers back to ambient before
                # probing, or the stale Y turns the round into mass false
                # negatives (the campaign does the same between iterations).
                shot.restore_ambient()
            if args.churn > 0:
                removed, added = rewire_random_links(network, args.churn)
                for e in removed | added:
                    for node_id in e:
                        monitor.note_churn_hint(node_id)
            report = monitor.delta_round(max_pairs=args.max_pairs)
            print(f"round {round_no}: {report.summary()}")
        savings = monitor.probe_savings
        full_cost = max(1, savings["universe_pairs"])
        print(
            f"probe cost: {savings['probed_pairs']} pairs over "
            f"{savings['delta_rounds']} delta rounds vs {full_cost} for "
            f"full re-snapshots "
            f"({savings['probed_pairs'] / full_cost:.1%} of snapshot cost)"
        )
    finally:
        if stream is not sys.stdout:
            stream.close()
    if workload is not None:
        workload.stop()
        print(
            f"workload offered {workload.stats['offered']} txs "
            f"({workload.offered_rate():.0f} tx/s), "
            f"admitted {workload.stats['admitted']}, "
            f"floor-rejected {workload.stats['floor_rejected']}"
        )
    if args.fee_market:
        market = network.fee_market
        print(
            f"fee market: floor={market.floor} quote={market.quote} "
            f"surge=x{market.surge:.2f} ({market.updates} updates)"
        )
    if obs is not None:
        from repro.obs.export import write_events, write_metrics

        if args.metrics_out:
            path = write_metrics(
                obs.metrics, args.metrics_out, fmt=args.metrics_format
            )
            print(f"metrics written to {path}")
        if args.trace_out:
            print(
                f"event trace written to {write_events(obs.events, args.trace_out)}"
            )
    return 0


def _cmd_profile(_args: argparse.Namespace) -> int:
    print(f"{'client':<12} {'R':>7} {'U':>6} {'P':>6} {'L':>6}  measurable")
    for policy in (GETH, PARITY, NETHERMIND, BESU, ALETH):
        profile = profile_client(policy)
        measurable = "yes" if policy.measurable else "NO (R=0)"
        print(
            f"{profile.name:<12} {profile.replace_bump_percent():>7} "
            f"{profile.future_limit_str():>6} {profile.eviction_floor:>6} "
            f"{profile.capacity:>6}  {measurable}"
        )
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    n = args.nodes
    k = args.group_size or max(2, args.budget // n)
    ids = [f"n{i}" for i in range(n)]
    iterations = build_schedule(ids, k)
    pairs = n * (n - 1) // 2
    print(f"N={n} nodes, K={k} (budget {args.budget} slots)")
    print(f"pairs to cover     : {pairs}")
    print(f"iterations         : {len(iterations)}")
    print(f"paper formula      : N/K + log K = {expected_iteration_count(n, k)}")
    largest = max(it.edge_count for it in iterations)
    print(f"largest iteration  : {largest} edges")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.io import load_measurement

    measurement = load_measurement(args.measurement)
    print(measurement.summary())
    graph = measurement.graph
    print("\ndegree distribution:")
    print(degree_distribution(graph).ascii_plot(width=36, max_rows=20))
    table = comparison_table(graph, "Measured", trials=5, seed=0)
    print()
    print(render_comparison(table, title="graph statistics vs ER/CM/BA"))
    if args.communities:
        from repro.analysis.communities import community_table, detect_communities

        print("\ncommunities:")
        print(community_table(detect_communities(graph, seed=0)))
    if args.security:
        from repro.analysis.security import (
            critical_nodes,
            eclipse_targets,
            neighbor_fingerprints,
        )

        print("\nsecurity assessment:")
        targets = eclipse_targets(graph, max_degree=3)
        print(f"  eclipse targets (degree <= 3): {len(targets)}")
        print(f"  {critical_nodes(graph).summary()}")
        print(f"  {neighbor_fingerprints(graph).summary()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.obs import NULL, Observability
    from repro.service import ServiceConfig, run_service

    if args.config:
        with open(args.config, "r", encoding="utf-8") as handle:
            config = ServiceConfig.from_dict(json.load(handle))
    else:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            state_dir=args.state_dir,
            max_concurrent=args.max_concurrent,
            journal_fsync=not args.no_fsync,
        )
    obs = Observability() if args.obs else NULL
    print(
        f"measurement service starting (state dir: {config.state_dir}; "
        "endpoint written to endpoint.json there; SIGTERM drains gracefully)"
    )
    run_service(config, obs=obs)
    print("measurement service drained and stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ServiceError
    from repro.service import ServiceClient

    if args.params:
        params = json.loads(args.params)
    elif args.kind == "measure":
        from repro.core.parallel_exec import CampaignSpec
        from repro.netgen.ethereum import NetworkSpec

        campaign = CampaignSpec(
            network=NetworkSpec(n_nodes=args.nodes, seed=args.seed),
            repeats=args.repeats,
        )
        params = {"campaign": campaign.to_dict(), "workers": args.workers}
    else:
        params = {"steps": 1}
    try:
        client = ServiceClient.from_state_dir(args.state_dir)
        job = client.submit(
            tenant=args.tenant,
            kind=args.kind,
            params=params,
            deadline=args.deadline,
            max_attempts=args.max_attempts,
        )
        if args.wait:
            job = client.wait(job["spec"]["job_id"], timeout=args.timeout)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(job, indent=2, sort_keys=True))
    return 0


def _cmd_estimate_cost(args: argparse.Namespace) -> int:
    estimate = MainnetEstimate(
        n_nodes=args.nodes,
        cost_per_pair_ether=args.per_pair,
        eth_price_usd=args.eth_price,
    )
    print(estimate.summary())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "measure": _cmd_measure,
        "arena": _cmd_arena,
        "monitor": _cmd_monitor,
        "profile": _cmd_profile,
        "schedule": _cmd_schedule,
        "analyze": _cmd_analyze,
        "estimate-cost": _cmd_estimate_cost,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
