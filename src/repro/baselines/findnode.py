"""FIND_NODE routing-table crawling (the W2 class of related work).

Method
------
Gao et al. and Paphitis et al. measure Ethereum "topology" by querying
every node's discovery routing table. That reveals *inactive*
neighbours — a superset-ish, loosely correlated set that "cannot
distinguish a node's (50) active neighbors from its (272) inactive
ones" (Section 4). The crawl here reproduces the method and quantifies
exactly how poorly routing-table edges predict active links, which is
the gap TopoShot closes.

Fidelity caveats vs the source paper
------------------------------------
- Real crawlers walk the Kademlia keyspace with many targeted FIND_NODE
  queries per node; the simulator's routing tables are small enough that
  one query returns the full table, so crawl cost here underestimates a
  live crawl's message count.
- Routing tables in the simulator are generated alongside the topology
  (see :mod:`repro.netgen.ethereum`) with a controlled active/inactive
  overlap, so the precision/recall this crawl reports is a property of
  that generator, tuned to the paper's qualitative claim rather than
  measured mainnet churn.

Config knobs
------------
``wait``  simulated seconds to wait for Neighbors responses before
          assembling the inactive-edge graph
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.core.results import Edge, ValidationScore, score_edges
from repro.eth.network import Network
from repro.eth.supernode import Supernode


@dataclass
class FindNodeCrawl:
    """Outcome of a full routing-table crawl."""

    inactive_edges: Set[Edge]
    responses: int
    score_vs_active: ValidationScore

    @property
    def active_edge_coverage(self) -> float:
        """Recall: how many active links also appear as table entries."""
        return self.score_vs_active.recall

    @property
    def active_edge_precision(self) -> float:
        """Precision: how many crawled entries are actually active links."""
        return self.score_vs_active.precision

    def summary(self) -> str:
        return (
            f"FIND_NODE crawl: {len(self.inactive_edges)} inactive edges from "
            f"{self.responses} responses; vs active topology "
            f"precision={self.active_edge_precision:.3f} "
            f"recall={self.active_edge_coverage:.3f}"
        )


def crawl_inactive_edges(
    network: Network,
    supernode: Supernode,
    wait: float = 2.0,
) -> FindNodeCrawl:
    """Send FIND_NODE to every peer and assemble the inactive-edge graph."""
    supernode.clear_neighbor_responses()
    for peer_id in supernode.peer_ids:
        supernode.send_find_node(peer_id)
    network.run(wait)

    inactive: Set[Edge] = set()
    known_ids = set(network.measurable_node_ids())
    for node_id, entries in supernode.neighbor_responses.items():
        for entry in entries:
            if entry in known_ids and entry != node_id:
                inactive.add(frozenset((node_id, entry)))

    truth = network.ground_truth_edges()
    return FindNodeCrawl(
        inactive_edges=inactive,
        responses=len(supernode.neighbor_responses),
        score_vs_active=score_edges(inactive, truth),
    )
