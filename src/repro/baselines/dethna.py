"""DEthna: topology discovery with marked transactions (Zhao et al., 2024).

Method
------
DEthna (arXiv:2402.03881) infers *active* edges by injecting **marked
transactions**: transactions crafted to be relayed by every client but
never mined, so probing is nearly free compared to TopoShot's replacement
floods. Each measurement round assigns every target node its own mark (a
fresh sender account at a deliberately low fee), injects all marks at the
same instant, and watches which peers demonstrate possession of which
mark back at the monitor. A node that echoes target ``A``'s mark in the
first relay wave — before multi-hop propagation can contaminate the
observation — is taken to be ``A``'s neighbour; votes accumulate over
rounds and a pair is claimed once it collects ``min_votes``.

Concretely, per round and per mark ``m_A``:

1. the monitor pushes ``m_A`` to ``A`` only (priced via
   :func:`repro.core.adaptive.pool_waterline` so it clears eviction but
   sits below the ambient median — relayed, never attractive to miners);
2. ``A`` admits the mark and broadcasts it to its unaware peers in one
   flush, so every true neighbour receives it in the same relay epoch;
3. the monitor records first-observation times of ``m_A`` per peer
   (pushes and announcements both count, see
   :class:`repro.eth.supernode.Supernode`) and votes for the peers whose
   report lands within ``margin`` seconds of the round's earliest report
   — the earliest reporter is a one-hop neighbour with high probability,
   and the tight window excludes most two-hop echoes.

Fidelity caveats vs the source paper
------------------------------------
- The paper's marks are unexecutable on-chain (e.g. insufficient balance
  at execution) yet valid for relay; this simulator has no execution
  layer, so "low-fee, fresh account" stands in. The cost asymmetry the
  paper exploits (marks are never mined) is preserved.
- The paper calibrates per-peer RTTs on the live network to normalise
  observation times; here the race window rides on the simulator's
  homogeneous latency model, so ``margin`` plays that role directly.
- When only a subset of nodes is targeted (the arena's ``--targets``
  mode), the earliest *target* reporter of a mark can be two hops away
  through a non-target relay, which costs precision — the full-network
  mode of the paper does not have this failure mode.

Config knobs
------------
``rounds``             measurement rounds (more rounds → higher recall;
                       each neighbour must win the relay race at least
                       ``min_votes`` times)
``margin``             race window in seconds after a mark's earliest
                       report within which a reporter earns a vote
``round_wait``         simulated seconds each round runs before reading
                       the observation log
``mark_price_factor``  mark fee as a fraction of the ambient median
                       (clamped above the pool eviction waterline)
``min_votes``          votes (across rounds, both directions pooled)
                       needed to claim an edge
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.adaptive import pool_waterline
from repro.core.results import Edge, ValidationScore, edge, score_edges
from repro.errors import SendTimeoutError
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory, gwei


@dataclass
class DethnaReport:
    """Outcome of a DEthna measurement: votes, edges, and probe cost."""

    predicted: Set[Edge] = field(default_factory=set)
    votes: Dict[Edge, int] = field(default_factory=dict)
    marks_sent: int = 0
    rounds: int = 0
    send_failures: int = 0
    score_vs_active: Optional[ValidationScore] = None

    def summary(self) -> str:
        v = self.score_vs_active
        scored = (
            f" precision={v.precision:.3f} recall={v.recall:.3f}" if v else ""
        )
        return (
            f"dethna: {len(self.predicted)} predicted edges from "
            f"{self.marks_sent} marks over {self.rounds} rounds;{scored}"
        )


def mark_price(network: Network, reference_id: str, factor: float = 0.5) -> int:
    """Price a mark: relayed (above the eviction waterline) but cheap.

    Reuses :func:`repro.core.adaptive.pool_waterline` — the same adaptive
    pricing hook TopoShot's Y-estimation builds on — so the mark survives
    admission into a full pool while staying below the ambient median
    (miners never prefer it; on the paper's live network it would also be
    unexecutable).
    """
    node = network.node(reference_id)
    median = node.mempool.median_pending_price() or gwei(1.0)
    waterline = pool_waterline(node) or 0
    return max(waterline + 1, int(median * factor))


def run_dethna(
    network: Network,
    supernode: Supernode,
    targets: Optional[Sequence[str]] = None,
    rounds: int = 12,
    margin: float = 0.03,
    round_wait: float = 1.2,
    mark_price_factor: float = 0.5,
    min_votes: int = 2,
    wallet: Optional[Wallet] = None,
    refresh_between_rounds: bool = True,
    validate: bool = True,
) -> DethnaReport:
    """Run the full DEthna protocol among ``targets`` (default: all
    measurable nodes) and score the inferred edge set.

    Marks for all targets are injected at the same simulated instant, so
    one round measures every target in parallel — the cost profile the
    paper claims over pairwise probing. Injections that time out under a
    fault plan are recorded in ``send_failures`` and skipped for the
    round.
    """
    from repro.netgen.workloads import refresh_mempools

    if targets is None:
        targets = network.measurable_node_ids()
    targets = list(targets)
    wallet = wallet or Wallet("dethna")
    factory = TransactionFactory()
    report = DethnaReport(rounds=rounds)
    votes: Dict[Edge, int] = {}
    # Pin the ambient fee level once, like the campaign loop does, so the
    # inter-round refresh cannot ratchet the mark price upward.
    ambient = network.node(targets[0]).mempool.median_pending_price() or gwei(1.0)

    for round_index in range(rounds):
        price = mark_price(network, targets[0], factor=mark_price_factor)
        marks: Dict[str, str] = {}  # target -> mark hash
        for target in targets:
            mark = factory.transfer(
                wallet.fresh_account(prefix=f"mark-r{round_index}"), price
            )
            try:
                supernode.send_transactions(target, [mark])
            except SendTimeoutError:
                report.send_failures += 1
                continue
            marks[target] = mark.hash
            report.marks_sent += 1
        network.run(round_wait)

        for target, mark_hash in marks.items():
            arrivals: List[Tuple[float, str]] = []
            for peer in targets:
                if peer == target:
                    continue
                seen = supernode.first_observation_time(peer, mark_hash)
                if seen is not None:
                    arrivals.append((seen, peer))
            if not arrivals:
                continue
            earliest = min(t for t, _ in arrivals)
            for seen, peer in arrivals:
                if seen <= earliest + margin:
                    key = edge(target, peer)
                    votes[key] = votes.get(key, 0) + 1

        supernode.clear_observations()
        network.forget_known_transactions()
        if refresh_between_rounds and round_index + 1 < rounds:
            refresh_mempools(network, median_price=ambient)

    report.votes = votes
    report.predicted = {e for e, count in votes.items() if count >= min_votes}
    if validate:
        target_set = set(targets)
        truth = {
            link
            for link in network.ground_truth_edges()
            if set(link) <= target_set
        }
        report.score_vs_active = score_edges(report.predicted, truth)
    return report
