"""Baseline topology-measurement methods the paper compares against.

- :mod:`repro.baselines.txprobe` -- TxProbe (Delgado-Segura et al., FC'19)
  adapted to Ethereum, demonstrating why announcement-blocking fails when
  direct pushes exist (Section 4.1, Appendix A).
- :mod:`repro.baselines.findnode` -- the W2 approach (Gao et al.): crawl
  routing tables with FIND_NODE; measures *inactive* edges that do not
  reveal the active topology.
- :mod:`repro.baselines.timing` -- timing-correlation inference
  (Neudecker et al. 2016 style), the low-accuracy W3 baseline.
"""

from repro.baselines.census import NodeCensus, run_census
from repro.baselines.findnode import FindNodeCrawl, crawl_inactive_edges
from repro.baselines.timing import TimingInference, timing_inference
from repro.baselines.txprobe import TxProbeReport, txprobe_measure_link, txprobe_survey

__all__ = [
    "FindNodeCrawl",
    "NodeCensus",
    "TimingInference",
    "TxProbeReport",
    "crawl_inactive_edges",
    "run_census",
    "timing_inference",
    "txprobe_measure_link",
    "txprobe_survey",
]
