"""Baseline topology-measurement methods the paper compares against.

Seven protocols live under this package and in :mod:`repro.core` — the
full W1/W2/W3 related-work ladder of the paper's Table 1 plus the two
strongest successors, all runnable head-to-head via ``repro.cli arena``
(see ``docs/arena.md``):

- :mod:`repro.baselines.census` -- W1 (Kim et al., IMC'18): node
  profiling via handshakes; no edges at all.
- :mod:`repro.baselines.findnode` -- W2 (Gao et al.): crawl routing
  tables with FIND_NODE; measures *inactive* edges that do not reveal
  the active topology.
- :mod:`repro.baselines.timing` -- W3 timing-correlation inference
  (Neudecker et al. 2016 style), the low-accuracy active-edge baseline.
- :mod:`repro.baselines.txprobe` -- TxProbe (Delgado-Segura et al.,
  FC'19) adapted to Ethereum, demonstrating why announcement-blocking
  fails when direct pushes exist (Section 4.1, Appendix A).
- :mod:`repro.baselines.dethna` -- DEthna (arXiv:2402.03881):
  marked-transaction edge discovery, the cheap-probe successor.
- :mod:`repro.baselines.ethna` -- Ethna (arXiv:2010.01373): passive
  degree estimation from the push/announce fanout split; no probing.
- TopoShot itself is :class:`repro.core.campaign.TopoShot`.

Every module follows one docstring template — *Method* (with citation),
*Fidelity caveats vs the source paper*, *Config knobs* — so the arena
documentation can point here for protocol details.
"""

from repro.baselines.census import NodeCensus, run_census
from repro.baselines.dethna import DethnaReport, run_dethna
from repro.baselines.ethna import EthnaReport, run_ethna
from repro.baselines.findnode import FindNodeCrawl, crawl_inactive_edges
from repro.baselines.timing import TimingInference, timing_inference
from repro.baselines.txprobe import TxProbeReport, txprobe_measure_link, txprobe_survey

__all__ = [
    "DethnaReport",
    "EthnaReport",
    "FindNodeCrawl",
    "NodeCensus",
    "TimingInference",
    "TxProbeReport",
    "crawl_inactive_edges",
    "run_census",
    "run_dethna",
    "run_ethna",
    "timing_inference",
    "txprobe_measure_link",
    "txprobe_survey",
]
