"""Timing-analysis topology inference (Neudecker et al. 2016 style).

The W3 baseline the paper calls "limited in terms of low accuracy": inject
probe transactions at known origins, record each peer's first-observation
time at the supernode, and guess that the earliest responders after the
origin are its neighbours. The heuristic scores every (origin, peer) pair
by rank-weighted votes over many probes and keeps the best-scoring edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.results import Edge, ValidationScore, edge, score_edges
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory, gwei


@dataclass
class TimingInference:
    """Result of the timing heuristic."""

    predicted: Set[Edge] = field(default_factory=set)
    scores: Dict[Edge, float] = field(default_factory=dict)
    probes: int = 0
    score_vs_active: Optional[ValidationScore] = None

    def summary(self) -> str:
        v = self.score_vs_active
        scored = (
            f" precision={v.precision:.3f} recall={v.recall:.3f}" if v else ""
        )
        return (
            f"timing inference: {len(self.predicted)} predicted edges from "
            f"{self.probes} probes;{scored}"
        )


def timing_inference(
    network: Network,
    supernode: Supernode,
    probes_per_node: int = 3,
    neighbor_guess: int = 6,
    min_votes: float = 1.0,
    wait: float = 2.0,
    wallet: Optional[Wallet] = None,
) -> TimingInference:
    """Run the timing heuristic against every measurable node.

    For each probe injected at origin ``o``, the ``neighbor_guess``
    earliest peers to show the transaction (excluding ``o`` itself) each
    get a vote of weight ``1/rank`` for the edge (o, peer). Edges with
    accumulated weight >= ``min_votes`` are predicted.
    """
    wallet = wallet or Wallet("timing")
    factory = TransactionFactory()
    result = TimingInference()
    votes: Dict[Edge, float] = {}
    targets = network.measurable_node_ids()
    median = supernode.mempool.median_pending_price() or gwei(1.0)

    for origin in targets:
        for _ in range(probes_per_node):
            probe = factory.transfer(
                wallet.fresh_account(prefix="probe"), int(median * 1.2)
            )
            inject_time = network.sim.now
            supernode.send_transactions(origin, [probe])
            network.run(wait)
            result.probes += 1
            arrivals: List[Tuple[float, str]] = []
            for peer in targets:
                if peer == origin:
                    continue
                seen = supernode.first_observation_time(peer, probe.hash)
                if seen is not None:
                    arrivals.append((seen - inject_time, peer))
            arrivals.sort()
            for rank, (_, peer) in enumerate(arrivals[:neighbor_guess], start=1):
                key = edge(origin, peer)
                votes[key] = votes.get(key, 0.0) + 1.0 / rank
        supernode.clear_observations()
        network.forget_known_transactions()

    result.scores = votes
    result.predicted = {e for e, score in votes.items() if score >= min_votes}
    result.score_vs_active = score_edges(
        result.predicted, network.ground_truth_edges()
    )
    return result
