"""Timing-analysis topology inference (Neudecker et al. 2016 style).

Method
------
The W3 baseline the paper calls "limited in terms of low accuracy"
(Neudecker, Andelfinger & Hartenstein, "Timing analysis for inferring
the topology of the Bitcoin peer-to-peer network", 2016): inject probe
transactions at known origins, record each peer's first-observation
time at the supernode, and guess that the earliest responders after the
origin are its neighbours. The heuristic scores every (origin, peer)
pair by rank-weighted votes over many probes and keeps the best-scoring
edges.

Fidelity caveats vs the source paper
------------------------------------
- The original infers Bitcoin links from trickle/diffusion delays with a
  network-wide estimator validated in simulation; this port keeps only
  the core rank-by-first-arrival heuristic, which is what the TopoShot
  paper contrasts against.
- ``neighbor_guess`` plays the role of the paper's degree prior; there
  is no per-link latency calibration, so accuracy here is an upper bound
  on what the method achieves on the live network.
- With a target subset (the arena's ``--targets`` mode) the earliest
  reporters can be two-hop relays through non-target nodes, which costs
  precision — same caveat as :mod:`repro.baselines.dethna`.

Config knobs
------------
``probes_per_node``  probes injected per origin (more → stabler ranks)
``neighbor_guess``   how many earliest reporters earn votes per probe
                     (the degree prior)
``min_votes``        accumulated rank-weighted vote mass needed to
                     predict an edge
``wait``             simulated seconds each probe propagates before the
                     observation log is read
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.results import Edge, ValidationScore, edge, score_edges
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory, gwei


@dataclass
class TimingInference:
    """Result of the timing heuristic."""

    predicted: Set[Edge] = field(default_factory=set)
    scores: Dict[Edge, float] = field(default_factory=dict)
    probes: int = 0
    score_vs_active: Optional[ValidationScore] = None

    def summary(self) -> str:
        v = self.score_vs_active
        scored = (
            f" precision={v.precision:.3f} recall={v.recall:.3f}" if v else ""
        )
        return (
            f"timing inference: {len(self.predicted)} predicted edges from "
            f"{self.probes} probes;{scored}"
        )


def timing_inference(
    network: Network,
    supernode: Supernode,
    probes_per_node: int = 3,
    neighbor_guess: int = 6,
    min_votes: float = 1.0,
    wait: float = 2.0,
    wallet: Optional[Wallet] = None,
    targets: Optional[Sequence[str]] = None,
) -> TimingInference:
    """Run the timing heuristic against ``targets`` (default: every
    measurable node).

    For each probe injected at origin ``o``, the ``neighbor_guess``
    earliest peers to show the transaction (excluding ``o`` itself) each
    get a vote of weight ``1/rank`` for the edge (o, peer). Edges with
    accumulated weight >= ``min_votes`` are predicted. When ``targets``
    is given, probing, voting, and scoring are all restricted to edges
    inside that subset.
    """
    wallet = wallet or Wallet("timing")
    factory = TransactionFactory()
    result = TimingInference()
    votes: Dict[Edge, float] = {}
    subset = targets is not None
    targets = list(targets) if subset else list(network.measurable_node_ids())
    median = supernode.mempool.median_pending_price() or gwei(1.0)

    for origin in targets:
        for _ in range(probes_per_node):
            probe = factory.transfer(
                wallet.fresh_account(prefix="probe"), int(median * 1.2)
            )
            inject_time = network.sim.now
            supernode.send_transactions(origin, [probe])
            network.run(wait)
            result.probes += 1
            arrivals: List[Tuple[float, str]] = []
            for peer in targets:
                if peer == origin:
                    continue
                seen = supernode.first_observation_time(peer, probe.hash)
                if seen is not None:
                    arrivals.append((seen - inject_time, peer))
            arrivals.sort()
            for rank, (_, peer) in enumerate(arrivals[:neighbor_guess], start=1):
                key = edge(origin, peer)
                votes[key] = votes.get(key, 0.0) + 1.0 / rank
        supernode.clear_observations()
        network.forget_known_transactions()

    result.scores = votes
    result.predicted = {e for e, score in votes.items() if score >= min_votes}
    if subset:
        target_set = set(targets)
        truth = {
            link
            for link in network.ground_truth_edges()
            if set(link) <= target_set
        }
    else:
        truth = network.ground_truth_edges()
    result.score_vs_active = score_edges(result.predicted, truth)
    return result
