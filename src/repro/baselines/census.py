"""Node census — the W1 class of related work (Kim et al., IMC'18).

Method
------
Before TopoShot, Ethereum measurement meant *profiling nodes*: launch a
supernode, collect handshakes, and report network size, client mix,
freshness and reachability. This module reproduces that methodology so
the W1/W2/W3 ladder of the paper's Table 1 is complete in one package:

- W1 (:func:`run_census`): node attributes, no edges;
- W2 (:mod:`repro.baselines.findnode`): inactive edges;
- W3 (:mod:`repro.baselines.timing`, then :mod:`repro.core`): active
  edges — the timing baseline and TopoShot itself, which improves on it.

The census also feeds target selection: :func:`measurable_targets`
filters to client families with a known non-zero replacement bump,
which is where a TopoShot campaign starts (Section 5).

Fidelity caveats vs the source paper
------------------------------------
- Kim et al. crawl the discovery DHT for weeks and geolocate IPs; the
  simulator has no geography, so the census reduces to the parts that
  matter downstream — size, client mix, RPC responsiveness, relay
  behavior.
- Handshake version strings here come from :class:`NodeConfig`, standing
  in for the live network's user-agent diversity.

Config knobs
------------
``handshake_wait``  simulated seconds to wait for Status handshakes
                    before reading peer versions
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.eth.network import Network
from repro.eth.rpc import RpcServer, RpcUnavailableError
from repro.eth.supernode import Supernode


@dataclass
class NodeCensus:
    """A supernode's view of who is out there (no topology)."""

    network_size: int
    client_families: Dict[str, int] = field(default_factory=dict)
    rpc_responsive: int = 0
    relaying: int = 0
    versions: Dict[str, str] = field(default_factory=dict)

    @property
    def dominant_client(self) -> str:
        if not self.client_families:
            return "unknown"
        return max(self.client_families.items(), key=lambda kv: kv[1])[0]

    def family_share(self, family: str) -> float:
        if self.network_size == 0:
            return 0.0
        return self.client_families.get(family, 0) / self.network_size

    def summary(self) -> str:
        mix = ", ".join(
            f"{family} {count}"
            for family, count in sorted(
                self.client_families.items(), key=lambda kv: -kv[1]
            )
        )
        return (
            f"census: {self.network_size} nodes ({mix}); "
            f"{self.rpc_responsive} RPC-responsive; "
            f"dominant client {self.dominant_client}"
        )


def _family(version: str) -> str:
    """Client family from a handshake version string ('Geth/v1.9' -> geth)."""
    return version.split("/", 1)[0].lower() or "unknown"


def run_census(
    network: Network,
    supernode: Supernode,
    handshake_wait: float = 2.0,
) -> NodeCensus:
    """Collect the W1-style node census via handshakes and RPC probes."""
    network.run(handshake_wait)  # let Status handshakes arrive
    measurable = set(network.measurable_node_ids())
    census = NodeCensus(network_size=len(measurable))
    for node_id in sorted(measurable):
        version = supernode.peer_versions.get(node_id)
        if version is None:
            # Not peered with the supernode: fall back to a dial… which in
            # the simulator means the node is simply not reachable.
            continue
        census.versions[node_id] = version
        family = _family(version)
        census.client_families[family] = census.client_families.get(family, 0) + 1
        node = network.node(node_id)
        if node.config.relays_transactions:
            census.relaying += 1
        try:
            RpcServer(node).call("web3_clientVersion")
            census.rpc_responsive += 1
        except RpcUnavailableError:
            pass
    return census


def measurable_targets(census: NodeCensus, prefixes=("geth",)) -> List[str]:
    """The census-driven target list TopoShot would start from: nodes whose
    client family has a known non-zero replacement bump."""
    return sorted(
        node_id
        for node_id, version in census.versions.items()
        if _family(version) in prefixes
    )
