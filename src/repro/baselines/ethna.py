"""Ethna: passive degree estimation from transaction propagation.

Method
------
Ethna (Wang et al., arXiv:2010.01373) measures Ethereum's topology
*without sending a single probe*: a monitor peers widely, watches
ordinary transaction traffic, and exploits the protocol's fanout rule.
An Ethereum client forwards each newly admitted transaction as a full
body (*push*) to ``ceil(sqrt(d))`` of its ``d`` peers and as a hash
announcement to the rest. From the monitor's seat, the fraction of
transactions a peer chooses to *push* to it (rather than announce) is a
direct function of that peer's degree:

    ``r(d) ≈ ceil(sqrt(d)) / (d - 1)``

(the ``-1`` because the relay only considers peers not already known to
have the transaction — at relay time that is at least the peer it got
the transaction from). Counting pushes vs announcements per peer over
enough organic traffic and inverting ``r`` yields a degree estimate per
peer; no edge identities are learned, so Ethna reports *degrees*, not an
edge set.

Fidelity caveats vs the source paper
------------------------------------
- The paper estimates degree from the eth/65 announce-vs-broadcast split
  of real Geth nodes, exactly the split this simulator's
  ``ceil(sqrt(k))`` batched gossip implements, so the estimator's core
  identity carries over; the paper's additional Markov-chain refinement
  for nodes *not* directly peered with the monitor is out of scope
  (every arena target is peered with the monitor).
- The paper runs on weeks of mainnet traffic; here the organic traffic
  is a seeded :class:`repro.netgen.workloads.BackgroundWorkload`, so
  sample counts per peer are small (tens, not millions). The estimate is
  unbiased but noisy; ``degree_mape`` in the report quantifies it.
- The monitor itself is one of each target's peers, so the true quantity
  the estimator converges to is the target's *gossip* degree including
  the monitor link; the report scores against exactly that.

Config knobs
------------
``observation_txs``  organic transactions to observe before estimating
                     (more → tighter per-peer ratio estimates)
``tx_rate``          background submission rate, transactions per
                     simulated second
``min_samples``      minimum (push + announce) observations from a peer
                     before an estimate is produced for it
``settle``           extra simulated seconds after the last submission
                     so in-flight relays land
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei


@dataclass
class EthnaReport:
    """Per-peer degree estimates and their error against ground truth."""

    degree_estimates: Dict[str, int] = field(default_factory=dict)
    true_degrees: Dict[str, int] = field(default_factory=dict)
    push_counts: Dict[str, int] = field(default_factory=dict)
    announce_counts: Dict[str, int] = field(default_factory=dict)
    observed_txs: int = 0
    skipped_low_sample: int = 0

    @property
    def degree_mae(self) -> float:
        """Mean absolute error of the degree estimates (0.0 if none)."""
        if not self.degree_estimates:
            return 0.0
        total = sum(
            abs(est - self.true_degrees[peer])
            for peer, est in self.degree_estimates.items()
        )
        return total / len(self.degree_estimates)

    @property
    def degree_mape(self) -> float:
        """Mean absolute percentage error of the estimates (0.0 if none)."""
        if not self.degree_estimates:
            return 0.0
        total = sum(
            abs(est - self.true_degrees[peer]) / self.true_degrees[peer]
            for peer, est in self.degree_estimates.items()
            if self.true_degrees[peer] > 0
        )
        return total / len(self.degree_estimates)

    def summary(self) -> str:
        return (
            f"ethna: degree estimates for {len(self.degree_estimates)} peers "
            f"from {self.observed_txs} observed txs; "
            f"MAE={self.degree_mae:.2f} MAPE={self.degree_mape:.1%}"
        )


def expected_push_ratio(degree: int) -> float:
    """Model: probability a degree-``d`` relay pushes (vs announces) to
    one particular unaware peer, per the ``ceil(sqrt(d))`` fanout rule."""
    if degree <= 1:
        return 1.0
    unaware = degree - 1  # the relay's source already has the tx
    return min(math.ceil(math.sqrt(degree)), unaware) / unaware


def invert_push_ratio(ratio: float, max_degree: int) -> int:
    """Degree whose expected push ratio is closest to the observed one."""
    best_degree, best_gap = 2, float("inf")
    for degree in range(2, max(3, max_degree + 1)):
        gap = abs(expected_push_ratio(degree) - ratio)
        if gap < best_gap:
            best_degree, best_gap = degree, gap
    return best_degree


def run_ethna(
    network: Network,
    supernode: Supernode,
    targets: Optional[Sequence[str]] = None,
    observation_txs: int = 60,
    tx_rate: float = 25.0,
    min_samples: int = 5,
    settle: float = 1.0,
    median_price: Optional[int] = None,
    wallet: Optional[Wallet] = None,
) -> EthnaReport:
    """Observe organic traffic and estimate each target peer's degree.

    Purely passive: the monitor never injects anything itself; a seeded
    :class:`~repro.netgen.workloads.BackgroundWorkload` stands in for the
    live network's organic transaction flow.
    """
    from repro.netgen.workloads import BackgroundWorkload

    if targets is None:
        targets = network.measurable_node_ids()
    targets = list(targets)
    target_set = set(targets)

    supernode.clear_observations()
    workload = BackgroundWorkload(
        network,
        rate_per_second=tx_rate,
        median_price=median_price or gwei(1.0),
        wallet=wallet,
    )
    workload.start()
    while len(workload.submitted) < observation_txs:
        network.run(0.5)
    workload.stop()
    network.run(settle)

    organic = {tx.hash for tx in workload.submitted}
    report = EthnaReport(observed_txs=len(organic))
    pushes: Dict[str, int] = {}
    announces: Dict[str, int] = {}
    for obs in supernode.observations:
        if obs.tx_hash not in organic or obs.peer not in target_set:
            continue
        bucket = pushes if obs.kind == "push" else announces
        bucket[obs.peer] = bucket.get(obs.peer, 0) + 1

    max_degree = len(network.node_ids)
    for peer in targets:
        p = pushes.get(peer, 0)
        a = announces.get(peer, 0)
        report.push_counts[peer] = p
        report.announce_counts[peer] = a
        if p + a < min_samples:
            report.skipped_low_sample += 1
            continue
        ratio = p / (p + a)
        report.degree_estimates[peer] = invert_push_ratio(ratio, max_degree)
        report.true_degrees[peer] = len(network.node(peer).peers)
    return report
