"""TxProbe adapted to Ethereum (Section 4.1, Appendix A).

Method
------
TxProbe (Delgado-Segura et al., FC'19) infers Bitcoin links by
(1) announcing a marker transaction's hash to every node except the sink
so they burn their announcement-hold window on a body that never
arrives, (2) delivering the marker to the source, and (3) checking
whether it shows up at the sink — the only node free to fetch it from
the source.

On Bitcoin-style **announce-only** propagation this enforces isolation
and the method works. On Ethereum it does not, for the two reasons the
TopoShot paper gives:

- transactions are also *pushed* directly ("no matter how small portion
  it plays"), which bypasses the hold and relays the marker through
  third parties — false positives;
- under the account model the marker cannot be made an orphan the way a
  double-spend-dependent transaction is under UTXO: it carries a valid
  nonce, is merely an (unverifiable) overdraft, and propagates anyway.

:func:`txprobe_survey` measures a pair list and scores it against ground
truth so the benchmark can contrast TxProbe's precision with TopoShot's.

Fidelity caveats vs the source paper
------------------------------------
- The original's marker is a double-spend orphan; Ethereum has no
  equivalent, so the marker here is a plain (relayable) transfer — this
  is the point the port demonstrates, not a shortcut.
- TxProbe probes one directed pair at a time within Bitcoin's 120 s
  inventory window; the port keeps the serial one-pair-at-a-time shape,
  so its probe cost scales with the number of pairs — visible in the
  arena's cost columns.

Config knobs
------------
``blocking``      whether to run the announcement-hold blocking step
                  (turning it off shows the method's floor)
``wait``          seconds to wait for the marker at the sink; must stay
                  below the clients' 5 s announcement hold
``marker_price``  marker gas price (default 1.5x the ambient median so
                  pools admit it everywhere)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.results import Edge, ValidationScore, edge, score_edges
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory, gwei


@dataclass
class TxProbeReport:
    """One TxProbe-style probe of a directed pair."""

    a: str
    b: str
    positive: bool
    marker_hash: str


def txprobe_measure_link(
    network: Network,
    supernode: Supernode,
    a_id: str,
    b_id: str,
    wallet: Optional[Wallet] = None,
    marker_price: Optional[int] = None,
    blocking: bool = True,
    wait: float = 3.0,
) -> TxProbeReport:
    """Probe A->B the TxProbe way.

    ``wait`` must stay below the clients' announcement hold (5 s) — beyond
    it even Bitcoin-style blocking expires, exactly as TxProbe must finish
    within Bitcoin's 120 s window.
    """
    wallet = wallet or Wallet(f"txprobe-{network.sim.now:.3f}")
    factory = TransactionFactory()
    if marker_price is None:
        median = supernode.mempool.median_pending_price()
        marker_price = int((median or gwei(1.0)) * 1.5)
    marker = factory.transfer(wallet.fresh_account(prefix="marker"), marker_price)

    if blocking:
        # Announce the marker hash everywhere except the sink; never
        # deliver the body (the announcement-hold blocking trick).
        for peer_id in supernode.peer_ids:
            if peer_id not in (b_id,):
                supernode.announce_hashes(peer_id, [marker.hash])
        network.run(0.5)

    supernode.send_transactions(a_id, [marker])
    network.run(wait)
    return TxProbeReport(
        a=a_id,
        b=b_id,
        positive=supernode.observed_from(b_id, marker.hash),
        marker_hash=marker.hash,
    )


@dataclass
class TxProbeSurvey:
    """Scored outcome of probing many pairs."""

    reports: List[TxProbeReport] = field(default_factory=list)
    detected: Set[Edge] = field(default_factory=set)
    score: Optional[ValidationScore] = None


def txprobe_survey(
    network: Network,
    supernode: Supernode,
    pairs: Sequence[Tuple[str, str]],
    blocking: bool = True,
    wait: float = 3.0,
) -> TxProbeSurvey:
    """Probe each pair serially and score against the true topology."""
    survey = TxProbeSurvey()
    wallet = Wallet("txprobe-survey")
    for a, b in pairs:
        report = txprobe_measure_link(
            network, supernode, a, b, wallet=wallet, blocking=blocking, wait=wait
        )
        survey.reports.append(report)
        if report.positive:
            survey.detected.add(edge(a, b))
        supernode.clear_observations()
        network.forget_known_transactions()
    truth = {
        edge(a, b) for a, b in pairs if network.are_connected(a, b)
    }
    measured_universe = {edge(a, b) for a, b in pairs}
    survey.score = score_edges(survey.detected & measured_universe, truth)
    return survey
