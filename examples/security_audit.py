#!/usr/bin/env python3
"""Security audit of a measured topology — the Section 3 use cases.

The paper motivates topology measurement with what the knowledge enables:
finding nodes cheap to eclipse (use case 1), single points of failure
(use case 2), and fingerprintable nodes amenable to deanonymization
(use case 3). This example measures a network with TopoShot and then runs
those assessments on the *measured* graph — exactly what an auditor (or an
attacker) could do with the tool's output.

Run:  python examples/security_audit.py
"""

from repro import TopoShot, quick_network
from repro.analysis.security import (
    critical_nodes,
    eclipse_targets,
    neighbor_fingerprints,
    partition_resilience_score,
)
from repro.netgen.workloads import prefill_mempools


def main() -> None:
    print("== Security audit of a measured topology ==\n")
    # A sparse-ish network so the audit has something to find.
    network = quick_network(
        n_nodes=30, seed=13, outbound_dials=4, max_peers=10,
        mempool_capacity=256,
    )
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_repeats(3)
    measurement = shot.measure_network()
    graph = measurement.graph
    print(measurement.summary())

    print("\n-- Use case 1: targeted eclipse attacks --")
    targets = eclipse_targets(graph, max_degree=4)
    if targets:
        for target in targets[:5]:
            print(
                f"  {target.node}: degree {target.degree} -> an attacker "
                f"need only disable {target.attack_cost} connections"
            )
    else:
        print("  no low-degree nodes; eclipse attacks are expensive here")

    print("\n-- Use case 2: single points of failure --")
    report = critical_nodes(graph)
    print(f"  {report.summary()}")
    for node in report.cut_nodes[:5]:
        print(
            f"  cut node {node}: removal strands "
            f"{report.partition_impact[node]} node(s)"
        )
    score = partition_resilience_score(graph, removals=3)
    print(
        f"  partition stress test: {score:.0%} of nodes remain connected "
        "after removing the 3 highest-degree nodes"
    )

    print("\n-- Use case 3: deanonymization via neighbour fingerprints --")
    fingerprints = neighbor_fingerprints(graph)
    print(f"  {fingerprints.summary()}")
    print(
        "  (a node with a unique neighbour set can be re-identified by a "
        "passive observer,\n   the precondition of the Biryukov et al. "
        "client-deanonymization attack)"
    )


if __name__ == "__main__":
    main()
