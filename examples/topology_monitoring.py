#!/usr/bin/env python3
"""Longitudinal topology monitoring with adaptive pricing.

Two extensions an operator of TopoShot would want beyond the paper's
single snapshots:

1. **churn tracking** — measure repeatedly and diff the snapshots: which
   active links appeared, which vanished, what the stable core is;
2. **workload-adaptive Y** — on a mining network, re-derive the
   measurement price from live inclusion data before every round so the
   non-interference conditions keep holding as the fee market moves.

Run:  python examples/topology_monitoring.py
"""

from repro import TopoShot, quick_network
from repro.core.adaptive import AdaptiveYController
from repro.core.monitor import TopologyMonitor, rewire_random_links
from repro.eth.miner import Miner
from repro.eth.transaction import INTRINSIC_GAS, gwei
from repro.netgen.workloads import prefill_mempools


def main() -> None:
    print("== Longitudinal monitoring of a drifting overlay ==\n")
    network = quick_network(
        n_nodes=18, seed=41, outbound_dials=4, max_peers=10,
        mempool_capacity=256,
    )
    prefill_mempools(network, median_price=gwei(5.0), sigma=0.25)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_repeats(2)

    # A miner keeps the fee market alive; the adaptive controller reads it.
    network.chain.gas_limit = 5 * INTRINSIC_GAS
    miner = Miner(
        network.node(network.measurable_node_ids()[0]),
        network.chain,
        block_interval=10.0,
        min_gas_price=gwei(2.0),
    )
    miner.start()
    controller = AdaptiveYController(
        network.chain, shot.supernode, margin=0.7
    )

    churn_log = []

    def drift():
        removed, added = rewire_random_links(network, fraction=0.12)
        churn_log.append((removed, added))
        # Re-derive Y from the market before the next round.
        network.run(25.0)  # let some blocks land
        y = controller.next_y()
        shot.config = shot.config.with_gas_price(y)
        print(f"  [adaptive] {controller.last_decision.summary()}")

    monitor = TopologyMonitor(shot, between_rounds=drift)
    print("taking 3 snapshots with injected link churn between them...\n")
    monitor.run_rounds(3)

    for index, report in enumerate(monitor.churn_series()):
        removed, added = churn_log[index]
        print(f"round {index} -> {index + 1}: {report.summary()}")
        caught_removed = len(report.removed & removed)
        caught_added = len(report.added & added)
        print(
            f"  injected churn: -{len(removed)} +{len(added)}; "
            f"detected {caught_removed} removals, {caught_added} additions"
        )

    core = monitor.persistent_edges()
    print(
        f"\nstable core: {len(core)} links present in every snapshot "
        f"(of {len(monitor.snapshots[0].edges)} initially measured)"
    )
    for snapshot in monitor.snapshots:
        score = snapshot.measurement.score
        print(
            f"  snapshot @ {snapshot.taken_at:7.0f}s: "
            f"{len(snapshot.edges)} edges, precision {score.precision:.2f}, "
            f"recall {score.recall:.2f}"
        )


if __name__ == "__main__":
    main()
