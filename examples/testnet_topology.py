#!/usr/bin/env python3
"""Testnet topology study (the Section 6.2 scenario, scaled down).

Measures a Ropsten-like network end to end and reproduces the paper's
analysis pipeline: degree distribution (Figure 6), graph statistics versus
ER/CM/BA random baselines (Table 4) and Louvain communities (Table 5).

The headline qualitative finding must reproduce: the measured overlay's
modularity sits clearly below every random-graph baseline, implying
resilience to network partitioning.

Run:  python examples/testnet_topology.py          (~1 minute)
      python examples/testnet_topology.py --small  (quick smoke run)
"""

import sys

from repro import TopoShot
from repro.analysis.communities import community_table, detect_communities
from repro.analysis.degrees import degree_distribution
from repro.analysis.randomgraphs import (
    comparison_table,
    modularity_lower_than_baselines,
)
from repro.analysis.report import render_comparison
from repro.netgen.ethereum import generate_network, ropsten_like
from repro.netgen.workloads import prefill_mempools


def main(small: bool = False) -> None:
    spec = ropsten_like(seed=1, n_nodes=24 if small else 60)
    print(f"== Measuring a {spec.name}-like testnet ({spec.n_nodes} nodes) ==\n")

    network = generate_network(spec)
    truth = network.ground_truth_graph()
    print(
        f"hidden ground truth: {truth.number_of_edges()} active links, "
        f"avg degree {2 * truth.number_of_edges() / spec.n_nodes:.1f}"
    )

    prefill_mempools(network)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_repeats(3)  # the paper's validation setup

    def progress(index, total, iteration, report):
        print(
            f"  iteration {index + 1:>3}/{total}: "
            f"{iteration.edge_count:>4} candidate edges, "
            f"{len(report.detected):>4} detected"
        )

    measurement = shot.measure_network(progress=progress)
    print()
    print(measurement.summary())

    graph = measurement.graph
    print("\n-- Degree distribution (Figure 6 analogue) --")
    print(degree_distribution(graph).ascii_plot(width=40, max_rows=25))

    print("\n-- Graph statistics vs random baselines (Table 4 analogue) --")
    table = comparison_table(graph, "Measured", trials=3 if small else 10, seed=1)
    print(render_comparison(table))
    verdict = modularity_lower_than_baselines(table)
    print(
        "\nmodularity below every random baseline: "
        f"{verdict} (paper: True -> partition resilience)"
    )

    print("\n-- Communities (Table 5 analogue) --")
    print(community_table(detect_communities(graph, seed=1)))


if __name__ == "__main__":
    main(small="--small" in sys.argv)
