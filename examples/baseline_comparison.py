#!/usr/bin/env python3
"""TopoShot versus the prior art, on one identical network.

Puts the Section 4 arguments on a single scoreboard:

- **FIND_NODE crawl** (W2, Gao et al.): measures routing-table (inactive)
  edges — cheap, but a poor predictor of the active topology;
- **TxProbe** (W3, Bitcoin): announcement-hold blocking fails against
  Ethereum's direct pushes -> false positives;
- **timing inference** (W3, Neudecker-style): first-arrival correlation,
  limited accuracy;
- **TopoShot**: replacement/eviction based, 100% precision.

Run:  python examples/baseline_comparison.py
"""

import itertools

from repro import TopoShot, quick_network
from repro.baselines.findnode import crawl_inactive_edges
from repro.baselines.timing import timing_inference
from repro.baselines.txprobe import txprobe_survey
from repro.eth.supernode import Supernode
from repro.netgen.workloads import prefill_mempools


def fresh_network(seed=21, n=30):
    network = quick_network(
        n_nodes=n,
        seed=seed,
        outbound_dials=5,
        max_peers=14,
        mempool_capacity=256,  # slot budget must cover 2*(n-2) seeds
    )
    prefill_mempools(network)
    return network


def main() -> None:
    print("== Four measurement methods, one hidden topology ==\n")
    seed, n = 21, 30
    truth = fresh_network(seed, n).ground_truth_graph()
    print(
        f"hidden topology: {truth.number_of_nodes()} nodes, "
        f"{truth.number_of_edges()} active links\n"
    )
    rows = []

    # --- FIND_NODE crawl (inactive edges) ------------------------------
    network = fresh_network(seed, n)
    supernode = Supernode.join(network)
    crawl = crawl_inactive_edges(network, supernode)
    rows.append(
        (
            "FIND_NODE crawl (W2)",
            crawl.score_vs_active.precision,
            crawl.score_vs_active.recall,
        )
    )

    # --- TxProbe adaptation --------------------------------------------
    network = fresh_network(seed, n)
    supernode = Supernode.join(network)
    sample_pairs = list(
        itertools.islice(
            itertools.combinations(sorted(truth.nodes()), 2), 30
        )
    )
    survey = txprobe_survey(network, supernode, sample_pairs)
    rows.append(
        ("TxProbe on Ethereum (W3)", survey.score.precision, survey.score.recall)
    )

    # --- Timing inference ------------------------------------------------
    network = fresh_network(seed, n)
    supernode = Supernode.join(network)
    timing = timing_inference(network, supernode, probes_per_node=2)
    rows.append(
        (
            "Timing inference (W3)",
            timing.score_vs_active.precision,
            timing.score_vs_active.recall,
        )
    )

    # --- TopoShot ---------------------------------------------------------
    network = fresh_network(seed, n)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_repeats(3)
    measurement = shot.measure_network()
    rows.append(("TopoShot", measurement.score.precision, measurement.score.recall))

    print(f"{'method':<26} {'precision':>10} {'recall':>10}")
    print("-" * 48)
    for name, precision, recall in rows:
        print(f"{name:<26} {precision:>10.3f} {recall:>10.3f}")
    print(
        "\nTopoShot is the only method combining perfect precision with "
        "near-perfect recall\non active links, matching the paper's "
        "Section 4 comparison."
    )


if __name__ == "__main__":
    main()
