#!/usr/bin/env python3
"""Black-box client profiling — the full-scale Table 3 reproduction.

Runs the paper's replacement/eviction unit tests (Section 5.1) against all
five simulated clients at their *real* mempool sizes (Geth L=5120, Parity
L=8192, ...) and prints the recovered R / U / P / L next to the published
values.

Run:  python examples/client_profiling.py
"""

from repro.core.profiler import profile_client
from repro.eth.policies import ALETH, BESU, GETH, NETHERMIND, PARITY

PAPER_TABLE_3 = {
    "geth": ("10%", "4096", "0", "5120"),
    "parity": ("12.5%", "81", "2000", "8192"),
    "nethermind": ("0%", "17", "0", "2048"),
    "besu": ("10%", "inf", "0", "4096"),
    "aleth": ("0%", "1", "0", "2048"),
}


def main() -> None:
    print("== Black-box mempool profiling (Table 3, full scale) ==\n")
    header = (
        f"{'client':<12} {'R (meas)':>9} {'R (paper)':>10} "
        f"{'U (meas)':>9} {'U (paper)':>10} "
        f"{'P (meas)':>9} {'P (paper)':>10} "
        f"{'L (meas)':>9} {'L (paper)':>10}  measurable"
    )
    print(header)
    print("-" * len(header))
    for policy in (GETH, PARITY, NETHERMIND, BESU, ALETH):
        profile = profile_client(policy)
        paper_r, paper_u, paper_p, paper_l = PAPER_TABLE_3[policy.name]
        measurable = "yes" if policy.measurable else "NO (R=0 flaw)"
        print(
            f"{profile.name:<12} "
            f"{profile.replace_bump_percent():>9} {paper_r:>10} "
            f"{profile.future_limit_str():>9} {paper_u:>10} "
            f"{profile.eviction_floor:>9} {paper_p:>10} "
            f"{profile.capacity:>9} {paper_l:>10}  {measurable}"
        )
    print(
        "\nNethermind and Aleth report R = 0: an equal-priced transaction "
        "replaces an existing one,\nwhich TopoShot cannot measure and which "
        "the paper reported to the Ethereum bug bounty\nas a free "
        "re-propagation / flooding vector."
    )


if __name__ == "__main__":
    main()
