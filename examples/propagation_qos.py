#!/usr/bin/env python3
"""Propagation quality of service (Section 3, use cases 4 and 5).

"For a client interested in joining a mining pool, she may want to access
the knowledge of blockchain topology and make an informed decision to
choose the mining pool with better connectivity and lower propagation
delay" — and likewise for choosing an RPC relay.

This example measures a network with TopoShot, identifies the best- and
worst-connected nodes from the *measured* topology, and then verifies the
choice empirically: transaction and block propagation profiles from both.

Run:  python examples/propagation_qos.py
"""

from repro import TopoShot, quick_network
from repro.analysis.propagation import (
    measure_block_propagation,
    rank_origins_by_delay,
)
from repro.eth.transaction import INTRINSIC_GAS
from repro.netgen.workloads import prefill_mempools


def main() -> None:
    print("== Propagation QoS: picking a pool/relay by measured topology ==\n")
    network = quick_network(
        n_nodes=24, seed=29, outbound_dials=4, max_peers=16, n_hubs=1
    )
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_repeats(2)
    measurement = shot.measure_network()
    graph = measurement.graph
    print(measurement.summary())

    degrees = sorted(graph.degree(), key=lambda item: item[1])
    worst, best = degrees[0][0], degrees[-1][0]
    print(
        f"\nmeasured topology suggests: best-connected {best} "
        f"(degree {graph.degree(best)}), worst-connected {worst} "
        f"(degree {graph.degree(worst)})"
    )

    print("\n-- Use case 5: transaction relay QoS --")
    ranked = rank_origins_by_delay(network, [worst, best], probes=2)
    for profile in ranked:
        print(f"  {profile.summary()}")
    print(
        f"  -> submit through {ranked[0].origin} for fastest relay "
        "(matches the topology-based prediction: "
        f"{ranked[0].origin == best})"
    )

    print("\n-- Use case 4: miner block-propagation QoS --")
    network.chain.gas_limit = 4 * INTRINSIC_GAS
    for miner in (best, worst):
        profile = measure_block_propagation(network, miner, blocks=2)
        print(f"  miner {miner}: {profile.summary()}")
    print(
        "  -> the well-connected miner's blocks arrive sooner everywhere, "
        "reducing its stale-block risk"
    )


if __name__ == "__main__":
    main()
