#!/usr/bin/env python3
"""Mainnet critical-subnetwork study (the Section 6.3 scenario).

Reproduces the paper's three-step mainnet methodology on a scaled
mainnet-like overlay:

1. discover the nodes behind critical services (mining pools SrvM1..6,
   relays SrvR1/SrvR2) by matching frontend ``web3_clientVersion`` strings
   against handshake versions;
2. run the *non-interference extended* TopoShot over the pairwise links
   among nine selected critical nodes, monitoring conditions V1/V2;
3. report the Table 6 connection matrix and the measurement cost, plus the
   famous "measuring all of mainnet would cost > $60M" extrapolation.

Run:  python examples/mainnet_critical.py
"""

from repro import TopoShot
from repro.core.cost import CostLedger, estimate_from_measured_pair_cost, paper_mainnet_estimate
from repro.core.noninterference import NonInterferenceMonitor
from repro.eth.miner import Miner
from repro.eth.transaction import INTRINSIC_GAS, gwei
from repro.netgen.services import MainnetSpec, discover_critical_nodes, mainnet_like
from repro.netgen.workloads import prefill_mempools


def main() -> None:
    print("== Mainnet critical-subnetwork measurement ==\n")
    network, directory = mainnet_like(MainnetSpec(n_regular=50, seed=11))

    # Step 1: service-backend discovery via client-version matching.
    discovered = discover_critical_nodes(network, directory)
    print("-- Step 1: discovered service backends --")
    for service, nodes in discovered.items():
        print(f"  {service:<6} {len(nodes):>2} node(s)")

    # Pick one or two nodes per service, nine in total, like the paper.
    selected = {}
    for service, count in (
        ("SrvR1", 2), ("SrvR2", 1), ("SrvM1", 2), ("SrvM2", 2),
        ("SrvM3", 1), ("SrvM4", 1),
    ):
        selected[service] = discovered[service][:count]
    chosen = [n for nodes in selected.values() for n in nodes]
    print(f"\nselected {len(chosen)} critical nodes for pairwise measurement")

    # Mainnet realism: full pools, mining above the measurement price.
    prefill_mempools(network, median_price=gwei(10.0), sigma=0.2)
    network.chain.gas_limit = 6 * INTRINSIC_GAS
    miner = Miner(
        network.node(discovered["SrvM1"][0]),
        network.chain,
        block_interval=13.0,
        min_gas_price=gwei(2.0),
    )
    miner.start()

    shot = TopoShot.attach(network, targets=network.measurable_node_ids())
    shot.config = shot.config.with_gas_price(gwei(1.0)).with_repeats(2)

    # Step 2: extended TopoShot with the non-interference monitor armed.
    monitor = NonInterferenceMonitor(
        network.chain, y0=gwei(1.0), expiry=60.0
    )
    monitor.start(network.sim.now)
    pairs = [
        (chosen[i], chosen[j])
        for i in range(len(chosen))
        for j in range(i + 1, len(chosen))
    ]
    detected = shot.measure_pairs(pairs)
    monitor.stop(network.sim.now)
    # The last iteration's seeds stay buffered; as the pool drains, miners
    # eventually pick up the txA transactions (priced (1+R/2)Y > Y0, so V2
    # still holds) — this is where the measurement's Ether actually goes.
    miner.min_gas_price = gwei(1.02)
    network.run(60.0)  # let the expiry window elapse before verifying
    report = monitor.verify()
    print(f"\n-- Step 2: non-interference check --\n  {report.summary()}")

    # Step 3: the Table 6 connection matrix among service *types*.
    print("\n-- Step 3: connections among critical services (Table 6) --")
    service_of = {n: s for s, nodes in selected.items() for n in nodes}
    seen = {}
    for edge in detected:
        a, b = tuple(edge)
        key = tuple(sorted((service_of[a], service_of[b])))
        seen[key] = seen.get(key, 0) + 1
    for i, s1 in enumerate(selected):
        for s2 in list(selected)[i:]:
            key = tuple(sorted((s1, s2)))
            connected = seen.get(key, 0) > 0
            mark = "X" if connected else "-"
            print(f"  {s1:<6} -- {s2:<6} : {mark}")

    # Cost accounting and the full-mainnet extrapolation.
    ledger = CostLedger(network.chain)
    ledger.register("measurement", shot.measurement_senders)
    realized = ledger.spent_ether()
    print("\n-- Costs --")
    print(f"  realized so far  : {realized:.6f} ETH "
          f"({ledger.included_count()} measurement txs mined)")
    if realized == 0:
        print(
        "    (median-priced seeds are outbid by background traffic here;"
        "\n     on the live network they are mined within the 3h window)"
        )
    # Worst case: every pair's txA eventually pays its intrinsic fee.
    per_pair_eth = 1.05 * gwei(1.0) * INTRINSIC_GAS / 1e18
    print(f"  expected per pair: {per_pair_eth:.6f} ETH once seeds are mined")
    if realized > 0:
        scaled = estimate_from_measured_pair_cost(ledger, len(pairs))
        print(f"  extrapolated     : {scaled.summary()}")
    print(f"  paper's estimate : {paper_mainnet_estimate().summary()}")


if __name__ == "__main__":
    main()
