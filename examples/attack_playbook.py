#!/usr/bin/env python3
"""The attacker's view: what measured topology knowledge enables.

Section 3 of the paper argues topology knowledge matters because of the
attacks it enables; this playbook runs all four of them in the simulator:

1. eclipse with exact active links vs. a blind routing-table attacker;
2. DETER-style mempool eviction against a miner;
3. partitioning by knocking out a measured cut node;
4. deanonymizing a NAT'd client by its neighbour fingerprint.

Everything here targets simulated nodes inside this package's own network.

Run:  python examples/attack_playbook.py
"""

from repro.attacks.deanonymize import run_deanonymization
from repro.attacks.deter import block_damage, run_deter_attack
from repro.attacks.eclipse import compare_informed_vs_blind
from repro.attacks.partition import run_partition_attack
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def sparse():
    return quick_network(n_nodes=16, seed=67, outbound_dials=3, max_peers=8)


def main() -> None:
    print("== Attack playbook on measured topologies ==")

    print("\n-- 1. Targeted eclipse (use case 1) --")
    victim = sparse().measurable_node_ids()[3]
    duel = compare_informed_vs_blind(sparse, victim)
    print(f"  informed attacker: {duel.informed.summary()}")
    print(f"  blind attacker   : {duel.blind.summary()}")
    print(f"  topology knowledge decisive: {duel.knowledge_paid_off}")

    print("\n-- 2. DETER mempool eviction (DoS the paper builds on) --")
    network = sparse()
    prefill_mempools(network, median_price=gwei(1.0))
    miner_node = network.measurable_node_ids()[0]
    before = block_damage(network, miner_node)
    outcome = run_deter_attack(network, miner_node)
    after = block_damage(network, miner_node)
    print(f"  {outcome.summary()}")
    print(f"  miner's next block: {before} txs before, {after} after")

    print("\n-- 3. Partition via a cut node (use case 2) --")
    bridge_net = Network(seed=69)
    config = NodeConfig(policy=GETH.scaled(64))
    left = [f"l{i}" for i in range(4)]
    right = [f"r{i}" for i in range(4)]
    for name in left + right + ["bridge"]:
        bridge_net.create_node(name, config)
    for group in (left, right):
        for i in range(len(group)):
            bridge_net.connect(group[i], group[(i + 1) % len(group)])
    bridge_net.connect("l0", "bridge")
    bridge_net.connect("bridge", "r0")
    result = run_partition_attack(bridge_net, "bridge")
    print(f"  {result.summary()}")

    print("\n-- 4. Deanonymization by neighbour fingerprint (use case 3) --")
    deanon_net = Network(seed=93)
    servers = [f"srv{i}" for i in range(8)]
    for server in servers:
        deanon_net.create_node(server, config)
    for i in range(len(servers)):
        deanon_net.connect(servers[i], servers[(i + 1) % len(servers)])
        deanon_net.connect(servers[i], servers[(i + 3) % len(servers)])
    fingerprints = {
        "client0": {"srv0", "srv1"},
        "client1": {"srv2", "srv3"},
        "client2": {"srv4", "srv5"},
        "client3": {"srv6", "srv7"},
    }
    for client, neighbors in fingerprints.items():
        deanon_net.create_node(client, config)
        for server in neighbors:
            deanon_net.connect(client, server)
    attacker = Supernode.join(deanon_net, node_id="attacker", targets=servers)
    deanon_net.run(1.0)
    result = run_deanonymization(
        deanon_net, attacker, "client2", fingerprints, servers
    )
    print(f"  {result.summary()}")


if __name__ == "__main__":
    main()
