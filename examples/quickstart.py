#!/usr/bin/env python3
"""Quickstart: measure the topology of a small simulated Ethereum network.

This is the 60-second tour of the library:

1. generate an Ethereum-like overlay (nodes, mempools, discovery, links);
2. fill the mempools with background traffic (TopoShot needs full pools);
3. attach a measurement supernode and run the full TopoShot campaign;
4. compare the measured topology against the simulator's ground truth.

Run:  python examples/quickstart.py
"""

from repro import TopoShot, quick_network
from repro.analysis.degrees import degree_distribution
from repro.netgen.workloads import prefill_mempools


def main() -> None:
    print("== TopoShot quickstart ==\n")

    # 1. A 24-node Ethereum-like network (Geth clients, scaled mempools).
    network = quick_network(n_nodes=24, seed=7)
    truth = network.ground_truth_graph()
    print(
        f"generated network : {truth.number_of_nodes()} nodes, "
        f"{truth.number_of_edges()} active links (hidden from the tool)"
    )

    # 2. Full mempools are a correctness precondition of the primitive
    #    (Section 5.2.1: "99% of the time ... the mempool is full").
    prefill_mempools(network)

    # 3. Attach the measurement supernode and measure everything.
    shot = TopoShot.attach(network)
    print(
        f"measurement config: Z={shot.config.future_count} future txs, "
        f"R={shot.config.replace_bump:.1%}, "
        f"K={shot.config.group_size_for(24)} group size\n"
    )
    measurement = shot.measure_network()

    # 4. Score against ground truth (only possible in simulation — on the
    #    real network this topology is exactly the hidden information).
    print(measurement.summary())
    print()

    histogram = degree_distribution(measurement.graph)
    print("measured degree distribution:")
    print(histogram.ascii_plot(width=40))

    # A single link can also be probed with the serial primitive:
    a, b = measurement.node_ids[0], measurement.node_ids[1]
    link = shot.measure_link(a, b)
    print(
        f"\nserial probe {a} -- {b}: "
        f"{'connected' if link.connected else 'not connected'} "
        f"(ground truth: {truth.has_edge(a, b)})"
    )


if __name__ == "__main__":
    main()
