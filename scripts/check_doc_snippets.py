#!/usr/bin/env python
"""Execute every ```python code block in the docs and README.

Documentation that does not run is documentation that drifts. This script
extracts every fenced ``python`` block from ``README.md`` and ``docs/*.md``
and executes it, so CI fails the moment a docs example references an API
that no longer exists.

Rules:

- Blocks in one file run *cumulatively* in one namespace, top to bottom —
  a later block may use names defined by an earlier one (how a reader
  follows a page).
- Each file runs in a fresh temporary working directory, so examples may
  write artifacts (``campaign.json``...) without polluting the repo.
- A block can opt out by being immediately preceded by the marker comment
  ``<!-- doc-snippet: skip -->`` (e.g. deliberately partial fragments).
- A fenced ``console`` block immediately preceded by the marker comment
  ``<!-- doc-snippet: cli -->`` is executed too: every ``$ toposhot-repro
  ...`` line in it (backslash continuations joined) runs in-process via
  ``repro.cli.main`` and must exit 0. Non-``toposhot-repro`` command
  lines in such a block are an error — use a separate unmarked block for
  them.

Usage::

    PYTHONPATH=src python scripts/check_doc_snippets.py [files...]

With no arguments, checks README.md plus every docs/*.md.
"""

from __future__ import annotations

import os
import shlex
import sys
import tempfile
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

SKIP_MARKER = "<!-- doc-snippet: skip -->"
CLI_MARKER = "<!-- doc-snippet: cli -->"


@dataclass
class Snippet:
    path: Path
    start_line: int  # 1-based line of the opening fence
    code: str
    skipped: bool
    kind: str = "python"  # "python" | "cli"


def extract_snippets(path: Path) -> List[Snippet]:
    """Fenced ```python (and cli-marked ```console) blocks, in order."""
    snippets: List[Snippet] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    fence_line = 0
    buffer: List[str] = []
    skip_next = False
    cli_next = False
    pending_skip = False
    pending_kind = "python"
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block:
            if stripped == SKIP_MARKER:
                skip_next = True
                continue
            if stripped == CLI_MARKER:
                cli_next = True
                continue
            if stripped.startswith("```python") or (
                cli_next and stripped.startswith("```console")
            ):
                in_block = True
                fence_line = number
                buffer = []
                pending_skip = skip_next
                pending_kind = "cli" if stripped.startswith("```console") else "python"
            if stripped:
                # Any other non-blank line between marker and fence
                # cancels the markers.
                if not stripped.startswith("```"):
                    skip_next = False
                    cli_next = False
            continue
        if stripped.startswith("```"):
            in_block = False
            skip_next = False
            cli_next = False
            snippets.append(
                Snippet(
                    path=path,
                    start_line=fence_line,
                    code="\n".join(buffer),
                    skipped=pending_skip,
                    kind=pending_kind,
                )
            )
            continue
        buffer.append(line)
    return snippets


def cli_commands(snippet: Snippet) -> List[List[str]]:
    """``$ toposhot-repro ...`` lines of a cli block as argv lists.

    Backslash continuations are joined; output lines (no ``$`` prefix)
    are ignored. Any other command is a hard error — the in-process
    runner only knows how to invoke ``repro.cli.main``.
    """
    joined: List[str] = []
    continuation = False
    for raw in snippet.code.splitlines():
        line = raw.rstrip()
        if continuation:
            joined[-1] = joined[-1][:-1].rstrip() + " " + line.strip()
        elif line.lstrip().startswith("$ "):
            joined.append(line.lstrip()[2:].strip())
        else:
            continue
        continuation = joined[-1].endswith("\\")
    commands = []
    for command in joined:
        argv = shlex.split(command)
        if not argv or argv[0] != "toposhot-repro":
            raise ValueError(
                f"cli snippet may only run 'toposhot-repro ...' commands, "
                f"got: {command!r}"
            )
        commands.append(argv[1:])
    return commands


def run_cli_snippet(snippet: Snippet) -> None:
    """Run each command through ``repro.cli.main``; raise on rc != 0."""
    from repro.cli import main as cli_main

    for argv in cli_commands(snippet):
        rc = cli_main(argv)
        if rc != 0:
            raise RuntimeError(
                f"toposhot-repro {' '.join(argv)} exited with {rc}"
            )


def run_file(path: Path) -> List[str]:
    """Execute one file's snippets cumulatively; return failure messages."""
    failures: List[str] = []
    snippets = extract_snippets(path)
    if not snippets:
        return failures
    namespace: dict = {"__name__": "__doc_snippet__"}
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="doc-snippets-") as workdir:
        os.chdir(workdir)
        try:
            for snippet in snippets:
                label = f"{path.relative_to(REPO_ROOT)}:{snippet.start_line}"
                if snippet.skipped:
                    print(f"  SKIP {label}")
                    continue
                try:
                    if snippet.kind == "cli":
                        run_cli_snippet(snippet)
                    else:
                        code = compile(snippet.code, str(label), "exec")
                        exec(code, namespace)  # noqa: S102 - the point of the script
                except Exception:
                    failures.append(
                        f"{label}\n{traceback.format_exc(limit=8)}"
                    )
                    print(f"  FAIL {label}")
                else:
                    print(f"  ok   {label}")
        finally:
            os.chdir(cwd)
    return failures


def default_targets() -> List[Path]:
    targets = [REPO_ROOT / "README.md"]
    targets.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [t for t in targets if t.exists()]


def main(argv: List[str]) -> int:
    targets = [Path(a).resolve() for a in argv] if argv else default_targets()
    all_failures: List[str] = []
    total = 0
    for path in targets:
        snippets = extract_snippets(path)
        runnable = sum(1 for s in snippets if not s.skipped)
        total += runnable
        print(f"{path.relative_to(REPO_ROOT)}: {runnable} snippet(s)")
        all_failures.extend(run_file(path))
    print()
    if all_failures:
        print(f"{len(all_failures)} of {total} snippet(s) FAILED:\n")
        for failure in all_failures:
            print(failure)
        return 1
    print(f"all {total} snippet(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
