"""Tests for transactions and the factory."""

import pytest

from repro.errors import TransactionError
from repro.eth.account import Account, Wallet
from repro.eth.transaction import (
    GWEI,
    INTRINSIC_GAS,
    DynamicFeeTransaction,
    Transaction,
    TransactionFactory,
    gwei,
    to_gwei,
)


class TestUnits:
    def test_gwei_conversion(self):
        assert gwei(1.0) == 10**9
        assert gwei(0.1) == 10**8
        assert to_gwei(GWEI) == 1.0

    def test_fractional_gwei_rounds(self):
        assert gwei(1.5) == 1_500_000_000


class TestTransaction:
    def test_hash_is_deterministic(self):
        a = Transaction(sender="0xaa", nonce=0, gas_price=100)
        b = Transaction(sender="0xaa", nonce=0, gas_price=100)
        assert a.hash == b.hash

    def test_hash_changes_with_price(self):
        a = Transaction(sender="0xaa", nonce=0, gas_price=100)
        b = Transaction(sender="0xaa", nonce=0, gas_price=101)
        assert a.hash != b.hash

    def test_hash_changes_with_nonce(self):
        a = Transaction(sender="0xaa", nonce=0, gas_price=100)
        b = Transaction(sender="0xaa", nonce=1, gas_price=100)
        assert a.hash != b.hash

    def test_negative_nonce_rejected(self):
        with pytest.raises(TransactionError):
            Transaction(sender="0xaa", nonce=-1, gas_price=100)

    def test_gas_limit_below_intrinsic_rejected(self):
        with pytest.raises(TransactionError):
            Transaction(sender="0xaa", nonce=0, gas_price=100, gas_limit=20_000)

    def test_bid_and_effective_price_equal_for_legacy(self):
        tx = Transaction(sender="0xaa", nonce=0, gas_price=123)
        assert tx.bid_price() == 123
        assert tx.effective_price() == 123

    def test_fee_paid_defaults_to_intrinsic_gas(self):
        tx = Transaction(sender="0xaa", nonce=0, gas_price=2)
        assert tx.fee_paid_wei() == 2 * INTRINSIC_GAS

    def test_underpriced_for_base_fee(self):
        tx = Transaction(sender="0xaa", nonce=0, gas_price=100)
        assert tx.is_underpriced_for_base_fee(101)
        assert not tx.is_underpriced_for_base_fee(100)


class TestDynamicFeeTransaction:
    def test_bid_uses_max_fee(self):
        tx = DynamicFeeTransaction(
            sender="0xaa", nonce=0, gas_price=0, max_fee=200, priority_fee=10
        )
        assert tx.bid_price() == 200
        assert tx.gas_price == 200

    def test_effective_price_is_base_plus_tip_capped(self):
        tx = DynamicFeeTransaction(
            sender="0xaa", nonce=0, gas_price=0, max_fee=200, priority_fee=10
        )
        assert tx.effective_price(base_fee=100) == 110
        assert tx.effective_price(base_fee=195) == 200  # capped at max fee

    def test_tip_above_max_rejected(self):
        with pytest.raises(TransactionError):
            DynamicFeeTransaction(
                sender="0xaa", nonce=0, gas_price=0, max_fee=100, priority_fee=200
            )

    def test_dropped_when_max_fee_below_base(self):
        tx = DynamicFeeTransaction(
            sender="0xaa", nonce=0, gas_price=0, max_fee=100, priority_fee=1
        )
        assert tx.is_underpriced_for_base_fee(101)

    def test_hash_differs_from_legacy(self):
        legacy = Transaction(sender="0xaa", nonce=0, gas_price=100)
        dynamic = DynamicFeeTransaction(
            sender="0xaa", nonce=0, gas_price=100, max_fee=100, priority_fee=0
        )
        assert legacy.hash != dynamic.hash


class TestFactory:
    def test_transfer_consumes_nonce(self, factory):
        account = Account("alice")
        tx1 = factory.transfer(account, gas_price=100)
        tx2 = factory.transfer(account, gas_price=100)
        assert (tx1.nonce, tx2.nonce) == (0, 1)

    def test_explicit_nonce_does_not_consume(self, factory):
        account = Account("bob")
        factory.transfer(account, gas_price=100, nonce=5)
        assert account.peek_nonce() == 0

    def test_replacement_bumps_price_and_keeps_identity(self, factory):
        account = Account("carol")
        original = factory.transfer(account, gas_price=1000)
        bumped = factory.replacement(original, 0.10)
        assert bumped.sender == original.sender
        assert bumped.nonce == original.nonce
        assert bumped.gas_price == 1100

    def test_replacement_rejects_negative_bump(self, factory):
        account = Account("dave")
        original = factory.transfer(account, gas_price=1000)
        with pytest.raises(TransactionError):
            factory.replacement(original, -0.1)

    def test_future_has_nonce_gap(self, factory):
        account = Account("erin")
        future = factory.future(account, gas_price=100, nonce_gap=1000, index=3)
        assert future.nonce == 1003

    def test_dynamic_transfer(self, factory):
        account = Account("frank")
        tx = factory.dynamic_transfer(account, max_fee=gwei(2), priority_fee=gwei(1))
        assert isinstance(tx, DynamicFeeTransaction)
        assert tx.nonce == 0


class TestWallet:
    def test_accounts_are_cached_by_label(self):
        wallet = Wallet("w")
        assert wallet.account("x") is wallet.account("x")

    def test_fresh_accounts_are_distinct(self):
        wallet = Wallet("w")
        accounts = wallet.fresh_accounts(10)
        assert len({a.address for a in accounts}) == 10

    def test_two_wallets_never_collide(self):
        a = Wallet("a").account("same-label")
        b = Wallet("b").account("same-label")
        assert a.address != b.address

    def test_addresses_are_hex(self):
        account = Wallet("w").fresh_account()
        assert account.address.startswith("0x")
        assert len(account.address) == 42
