"""Regression tests for the BehaviorSet runtime caches at scale.

Two scale-exposed bugs pinned here:

* the spoof-relay cache grew without bound past the node's own
  ``known_tx_limit`` on long adversarial runs; and
* ``Network.forget_known_transactions`` wiped the nodes' known-tx state
  but left the behaviors' runtime caches populated, so a spoofing relay
  silently stopped re-forwarding across measurement-iteration boundaries
  — iterations were not isolated.
"""

import pytest

from repro.eth.behaviors import _RUNTIME_CACHE_LIMIT, BehaviorMix, BehaviorSet
from repro.eth.messages import Transactions
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import Transaction, gwei


def make_line(n=3, seed=11, **config_overrides):
    network = Network(seed=seed)
    config = NodeConfig(policy=GETH.scaled(64), **config_overrides)
    for i in range(n):
        network.create_node(f"n{i}", config)
    for i in range(n - 1):
        network.connect(f"n{i}", f"n{i + 1}")
    return network


def _seed_replaceable_tx(network, wallet, factory):
    """Plant one admitted tx; under-bumped replacements of it get rejected
    by every honest pool (distinct hashes, so each is a fresh spoof)."""
    account = wallet.fresh_account()
    original = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
    network.node("n0").submit_transaction(original)
    network.run(10.0)
    return account


def _send_rejected(network, account, index):
    """One under-bumped replacement (below GETH's 10% bump) into n1."""
    weak = Transaction(
        sender=account.address,
        nonce=0,
        gas_price=int(gwei(1.0)) + 1 + index,  # < 10% bump: pool rejects
    )
    network.send("n0", "n1", Transactions(txs=(weak,)))
    network.run(5.0)
    return weak


class TestSpoofCacheBound:
    def test_spoof_cache_bounded_by_known_tx_limit(self, wallet, factory):
        limit = 8
        network = make_line(3, known_tx_limit=limit)
        behavior_set = BehaviorSet(network, BehaviorMix())
        behavior_set.install_on(network.node("n1"), "spoof_relay")
        account = _seed_replaceable_tx(network, wallet, factory)

        for index in range(3 * limit):
            _send_rejected(network, account, index)

        cache = behavior_set._runtime_caches["spoof:n1"]
        assert behavior_set.counts["spoof_relay"] >= 3 * limit  # still spoofing
        assert len(cache) <= limit  # ...but the memory of it is bounded

    def test_unbounded_node_budget_falls_back_to_global_cap(self, wallet, factory):
        network = make_line(3, known_tx_limit=None)
        behavior_set = BehaviorSet(network, BehaviorMix())
        behavior_set.install_on(network.node("n1"), "spoof_relay")
        account = _seed_replaceable_tx(network, wallet, factory)
        _send_rejected(network, account, 0)
        cache = behavior_set._runtime_caches["spoof:n1"]
        assert 0 < len(cache) <= _RUNTIME_CACHE_LIMIT


class TestForgetLockstep:
    def test_forget_clears_runtime_caches_in_lockstep(self, wallet, factory):
        network = make_line(3)
        behavior_set = network.install_behaviors(BehaviorMix())
        behavior_set.install_on(network.node("n1"), "spoof_relay")
        account = _seed_replaceable_tx(network, wallet, factory)
        _send_rejected(network, account, 0)
        cache = behavior_set._runtime_caches["spoof:n1"]
        assert len(cache) > 0

        network.forget_known_transactions()

        assert len(cache) == 0  # cleared in place, same shared object
        assert behavior_set._runtime_caches["spoof:n1"] is cache

    def test_iterations_are_isolated_after_forget(self, wallet, factory):
        """The same rejected tx must be re-forwarded in a new measurement
        iteration: after forget, neither the nodes nor the spoof cache may
        remember it from the previous iteration."""
        network = make_line(3)
        behavior_set = network.install_behaviors(BehaviorMix())
        behavior_set.install_on(network.node("n1"), "spoof_relay")
        account = _seed_replaceable_tx(network, wallet, factory)

        weak = _send_rejected(network, account, 0)
        first_iteration = behavior_set.counts["spoof_relay"]
        assert first_iteration >= 1

        # Replaying the identical body without a wipe is suppressed...
        network.send("n0", "n1", Transactions(txs=(weak,)))
        network.run(5.0)
        assert behavior_set.counts["spoof_relay"] == first_iteration

        # ...but after the iteration boundary it spoofs again.
        network.forget_known_transactions()
        network.send("n0", "n1", Transactions(txs=(weak,)))
        network.run(5.0)
        assert behavior_set.counts["spoof_relay"] > first_iteration
