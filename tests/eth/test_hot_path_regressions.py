"""Regression tests for the hot-path overhaul's correctness fixes.

Three bugs rode along with the performance work and are pinned here:

1. The mempool's lazy eviction heaps were keyed by ``bid_price(base_fee)``
   at push time and never re-keyed when ``apply_block`` changed the base
   fee, so eviction decisions ran on stale prices.
2. Per-peer known-transaction caches grew without bound; they are now
   FIFO-bounded like Geth's 32768-hash knownTxs cache.
3. ``Node._announce_requested`` accumulated one entry per announced hash
   for the life of the node; expired hold-window entries are now swept
   opportunistically during ``_flush``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eth.mempool import AddOutcome, Mempool
from repro.eth.network import Network
from repro.eth.node import _ANNOUNCE_PRUNE_THRESHOLD, KnownTxCache, NodeConfig
from repro.eth.policies import GETH, MempoolPolicy
from repro.eth.transaction import Transaction, gwei


@dataclass(frozen=True)
class TipCappedTransaction(Transaction):
    """EIP-1559-style bid: capped tip once a base fee is in effect.

    The built-in transaction types ignore ``base_fee`` in ``bid_price``,
    which masks heap staleness; this subclass makes the bid genuinely
    base-fee-dependent so a stale heap ranks transactions wrongly.
    """

    tip_cap: int = 0

    def bid_price(self, base_fee: int = 0) -> int:
        if base_fee:
            return min(self.tip_cap, self.gas_price - base_fee)
        return self.gas_price


def tip_capped(sender: str, gas_price: int, tip_cap: int) -> TipCappedTransaction:
    return TipCappedTransaction(
        sender=sender, nonce=0, gas_price=gas_price, tip_cap=tip_cap
    )


class TestBaseFeeHeapRebuild:
    """``apply_block`` must re-key the eviction heaps on base-fee changes."""

    def make_pool(self) -> Mempool:
        policy = MempoolPolicy(
            name="tiny",
            replace_bump=0.10,
            future_limit_per_account=None,
            eviction_pending_floor=0,
            capacity=2,
        )
        return Mempool(policy=policy)

    def test_eviction_uses_rekeyed_prices(self):
        pool = self.make_pool()
        # At base fee 0 the bids are the raw gas prices: a=100, b=60, so
        # the admission-time heap ranks b lowest.
        a = tip_capped("0xa", gas_price=100, tip_cap=2)
        b = tip_capped("0xb", gas_price=60, tip_cap=50)
        assert pool.add(a).is_pending
        assert pool.add(b).is_pending

        # After the base fee moves to 30 the effective bids invert:
        # a bids min(2, 70) = 2, b bids min(50, 30) = 30.
        dropped = pool.apply_block([], new_base_fee=30)
        assert dropped == []

        # c bids min(10, 10) = 10: enough to displace a (2), not b (30).
        # With the stale heap the pool still considered b the cheapest
        # occupant, found 30 >= 10, and rejected c as pool-full.
        c = tip_capped("0xc", gas_price=40, tip_cap=10)
        result = pool.add(c)
        assert result.outcome is AddOutcome.ADMITTED_PENDING
        assert [t.hash for t in result.evicted] == [a.hash]
        assert a.hash not in pool
        assert b.hash in pool
        assert c.hash in pool

    def test_unchanged_base_fee_keeps_heaps(self):
        pool = self.make_pool()
        a = tip_capped("0xa", gas_price=100, tip_cap=2)
        assert pool.add(a).is_pending
        pool.apply_block([], new_base_fee=0)  # no change: nothing rebuilt
        assert a.hash in pool


class TestKnownTxCacheBound:
    def test_prune_is_fifo(self):
        cache = KnownTxCache()
        for i in range(6):
            cache.add(f"h{i}")
        assert cache.prune(4) == 2
        assert list(cache) == ["h2", "h3", "h4", "h5"]
        cache.discard("h3")
        assert "h3" not in cache
        assert cache.prune(4) == 0

    def test_node_bounds_per_peer_cache(self, wallet, factory):
        network = Network(seed=11)
        config = NodeConfig(policy=GETH.scaled(4096), known_tx_limit=8)
        a = network.create_node("a", config)
        network.create_node("b", config)
        network.connect("a", "b")
        for _ in range(20):
            tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
            a.receive_transaction("b", tx)
        known = a.peers["b"].known_txs
        assert len(known) == 8

    def test_unlimited_cache_when_configured(self, wallet, factory):
        network = Network(seed=12)
        config = NodeConfig(policy=GETH.scaled(4096), known_tx_limit=None)
        a = network.create_node("a", config)
        network.create_node("b", config)
        network.connect("a", "b")
        for _ in range(20):
            tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
            a.receive_transaction("b", tx)
        assert len(a.peers["b"].known_txs) == 20


class TestAnnounceHoldPruning:
    def test_flush_sweeps_expired_holds(self, wallet, factory):
        network = Network(seed=13)
        config = NodeConfig(policy=GETH.scaled(4096))
        a = network.create_node("a", config)
        network.create_node("b", config)
        network.connect("a", "b")
        # Pile up more expired hold entries than the sweep threshold, as a
        # long gossip run used to before they leaked forever.
        for i in range(_ANNOUNCE_PRUNE_THRESHOLD + 10):
            a._announce_requested[f"h{i}"] = -1.0
        a._announce_requested["live"] = 1e9
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        a.submit_transaction(tx)  # queues a broadcast, scheduling a flush
        network.sim.run()
        assert len(a._announce_requested) == 1
        assert "live" in a._announce_requested

    def test_small_maps_are_left_alone(self, wallet, factory):
        network = Network(seed=14)
        config = NodeConfig(policy=GETH.scaled(4096))
        a = network.create_node("a", config)
        network.create_node("b", config)
        network.connect("a", "b")
        a._announce_requested["stale"] = -1.0  # expired but below threshold
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        a.submit_transaction(tx)
        network.sim.run()
        assert "stale" in a._announce_requested


class TestDeliveryGuards:
    """The epoch fast path must never skip a guard that would have fired."""

    def test_disconnect_while_in_flight_drops(self):
        network = Network(seed=17)
        config = NodeConfig(policy=GETH.scaled(64))
        network.create_node("a", config)
        network.create_node("b", config)
        network.connect("a", "b")  # queues the two Status handshakes
        network.disconnect("a", "b")
        network.sim.run()
        assert network.drops_by_reason.get("link_vanished") == 2
        assert network.messages_dropped == 2
