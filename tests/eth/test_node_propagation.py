"""Tests for transaction propagation: push, announcements, future
non-forwarding, known-tx de-duplication."""


from repro.eth.messages import NewPooledTransactionHashes, Transactions
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import Transaction, gwei


def make_chain_network(n=4, **config_overrides):
    """n nodes in a line with explicit config."""
    network = Network(seed=11)
    config = NodeConfig(policy=GETH.scaled(64), **config_overrides)
    for i in range(n):
        network.create_node(f"n{i}", config)
    for i in range(n - 1):
        network.connect(f"n{i}", f"n{i + 1}")
    return network


class TestPushPropagation:
    def test_pending_tx_floods_whole_line(self, wallet, factory):
        network = make_chain_network(5)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("n0").submit_transaction(tx)
        network.run(10.0)
        for i in range(5):
            assert tx.hash in network.node(f"n{i}").mempool

    def test_future_tx_is_not_forwarded(self, wallet, factory):
        network = make_chain_network(3)
        future = factory.future(wallet.fresh_account(), gas_price=gwei(5))
        network.node("n0").submit_transaction(future)
        network.run(10.0)
        assert future.hash in network.node("n0").mempool
        assert future.hash not in network.node("n1").mempool

    def test_future_forwarder_misbehaviour(self, wallet, factory):
        """The non-default setting pre-processing filters out (§6.2.1)."""
        network = make_chain_network(3, forwards_future=True)
        future = factory.future(wallet.fresh_account(), gas_price=gwei(5))
        network.node("n0").submit_transaction(future)
        network.run(10.0)
        assert future.hash in network.node("n1").mempool

    def test_non_relaying_node_blocks_propagation(self, wallet, factory):
        network = Network(seed=2)
        relay_config = NodeConfig(policy=GETH.scaled(64))
        silent_config = NodeConfig(policy=GETH.scaled(64), relays_transactions=False)
        network.create_node("a", relay_config)
        network.create_node("mute", silent_config)
        network.create_node("b", relay_config)
        network.connect("a", "mute")
        network.connect("mute", "b")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("a").submit_transaction(tx)
        network.run(10.0)
        assert tx.hash in network.node("mute").mempool  # admitted
        assert tx.hash not in network.node("b").mempool  # never forwarded

    def test_rejected_tx_is_not_forwarded(self, wallet, factory):
        network = make_chain_network(3)
        account = wallet.fresh_account()
        original = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        network.node("n0").submit_transaction(original)
        network.run(5.0)
        # An insufficient replacement bump is rejected at n1 and stops there.
        weak = Transaction(sender=account.address, nonce=0, gas_price=int(gwei(1.02)))
        network.node("n1").receive_transaction("n0", weak)
        network.run(5.0)
        assert weak.hash not in network.node("n2").mempool

    def test_replacement_propagates(self, wallet, factory):
        network = make_chain_network(4)
        account = wallet.fresh_account()
        original = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        network.node("n0").submit_transaction(original)
        network.run(10.0)
        stronger = Transaction(sender=account.address, nonce=0, gas_price=gwei(1.2))
        network.node("n0").submit_transaction(stronger)
        network.run(10.0)
        for i in range(4):
            pool = network.node(f"n{i}").mempool
            assert stronger.hash in pool
            assert original.hash not in pool


class TestKnownTxTracking:
    def test_no_push_back_to_origin(self, wallet, factory):
        network = make_chain_network(2, push_to_all=True, announce_enabled=False)
        sender, receiver = network.node("n0"), network.node("n1")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        sender.submit_transaction(tx)
        network.run(5.0)
        before = network.messages_sent
        network.run(5.0)
        assert network.messages_sent == before  # no ping-pong

    def test_forget_known_transactions(self, wallet, factory):
        network = make_chain_network(2)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("n0").submit_transaction(tx)
        network.run(5.0)
        assert network.node("n0").knows("n1", tx.hash)
        network.forget_known_transactions()
        assert not network.node("n0").knows("n1", tx.hash)


class TestAnnouncements:
    def test_announced_tx_is_requested_and_fetched(self, wallet, factory):
        network = make_chain_network(2, announce_only=True)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("n0").submit_transaction(tx)
        network.run(5.0)
        assert tx.hash in network.node("n1").mempool
        kinds = network.messages_by_kind
        assert kinds.get("NewPooledTransactionHashes", 0) >= 1
        assert kinds.get("GetPooledTransactions", 0) >= 1
        assert kinds.get("PooledTransactions", 0) >= 1

    def test_hold_window_blocks_second_request(self, wallet, factory):
        """Within 5 s a node will not respond to other announcements of the
        same transaction (Section 2)."""
        network = Network(seed=5)
        config = NodeConfig(policy=GETH.scaled(64))
        for name in ("target", "x", "y"):
            network.create_node(name, config)
        network.connect("target", "x")
        network.connect("target", "y")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        target = network.node("target")
        target.handle_message("x", NewPooledTransactionHashes(hashes=(tx.hash,)))
        target.handle_message("y", NewPooledTransactionHashes(hashes=(tx.hash,)))
        network.run(1.0)
        assert network.messages_by_kind.get("GetPooledTransactions", 0) == 1

    def test_hold_expires_and_allows_rerequest(self, wallet, factory):
        network = Network(seed=5)
        config = NodeConfig(policy=GETH.scaled(64), announce_hold=5.0)
        for name in ("target", "x", "y"):
            network.create_node(name, config)
        network.connect("target", "x")
        network.connect("target", "y")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        target = network.node("target")
        target.handle_message("x", NewPooledTransactionHashes(hashes=(tx.hash,)))
        network.run(6.0)  # hold expired, body never arrived
        target.handle_message("y", NewPooledTransactionHashes(hashes=(tx.hash,)))
        network.run(1.0)
        assert network.messages_by_kind.get("GetPooledTransactions", 0) == 2

    def test_known_tx_not_requested(self, wallet, factory):
        network = make_chain_network(2)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("n1").submit_transaction(tx)
        network.run(2.0)
        requests_before = network.messages_by_kind.get("GetPooledTransactions", 0)
        network.node("n1").handle_message(
            "n0", NewPooledTransactionHashes(hashes=(tx.hash,))
        )
        network.run(2.0)
        assert (
            network.messages_by_kind.get("GetPooledTransactions", 0)
            == requests_before
        )

    def test_request_for_unknown_tx_gets_no_reply(self, wallet, factory):
        network = make_chain_network(2)
        from repro.eth.messages import GetPooledTransactions

        network.node("n0").handle_message(
            "n1", GetPooledTransactions(hashes=("0xdeadbeef",))
        )
        network.run(2.0)
        assert network.messages_by_kind.get("PooledTransactions", 0) == 0


class TestBatching:
    def test_pushes_are_batched_per_peer(self, wallet, factory):
        network = make_chain_network(2, push_to_all=True, announce_enabled=False)
        txs = [
            factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
            for _ in range(10)
        ]
        node = network.node("n0")
        for tx in txs:
            node.submit_transaction(tx)
        network.run(5.0)
        # All 10 submissions fit in one broadcast interval -> one packet.
        assert network.messages_by_kind.get("Transactions", 0) == 1
        assert all(tx.hash in network.node("n1").mempool for tx in txs)

    def test_direct_send_preserves_order(self, wallet, factory):
        network = make_chain_network(2)
        account = wallet.fresh_account()
        first = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        second = Transaction(sender=account.address, nonce=1, gas_price=gwei(1))
        network.node("n1").handle_message(
            "n0", Transactions(txs=(first, second))
        )
        assert network.node("n1").mempool.is_pending(second.hash)
