"""Tests for blocks, the canonical chain and the miner."""

import pytest

from repro.eth.account import Wallet
from repro.eth.chain import Block, Chain
from repro.eth.miner import Miner
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import INTRINSIC_GAS, Transaction, TransactionFactory, gwei


@pytest.fixture
def small_chain():
    """A chain whose blocks hold at most 4 plain transfers."""
    return Chain(gas_limit=4 * INTRINSIC_GAS)


class TestChain:
    def test_append_advances_height_and_nonces(self, small_chain, wallet, factory):
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        block = small_chain.append("miner-1", 10.0, [tx])
        assert small_chain.height == 1
        assert small_chain.head is block
        assert small_chain.confirmed_nonce(tx.sender) == 1
        assert small_chain.is_included(tx.hash)

    def test_block_fullness(self, small_chain, wallet, factory):
        txs = [
            factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
            for _ in range(4)
        ]
        full = small_chain.append("m", 0.0, txs)
        assert full.is_full
        partial = small_chain.append("m", 1.0, txs[:2])
        assert not partial.is_full

    def test_min_included_price(self, small_chain, wallet):
        txs = [
            Transaction(sender=wallet.fresh_account().address, nonce=0, gas_price=p)
            for p in (300, 100, 200)
        ]
        block = small_chain.append("m", 0.0, txs)
        assert block.min_included_price() == 100

    def test_empty_block_min_price_is_none(self, small_chain):
        block = small_chain.append("m", 0.0, [])
        assert block.min_included_price() is None

    def test_fees_paid_by(self, small_chain, wallet, factory):
        tx = factory.transfer(wallet.fresh_account(), gas_price=100)
        small_chain.append("m", 0.0, [tx])
        assert small_chain.fees_paid_by({tx.sender}) == 100 * INTRINSIC_GAS
        assert small_chain.fees_paid_by({"0xother"}) == 0

    def test_blocks_in_window(self, small_chain):
        for t in (1.0, 5.0, 9.0):
            small_chain.append("m", t, [])
        assert [b.timestamp for b in small_chain.blocks_in_window(2.0, 9.0)] == [
            5.0,
            9.0,
        ]


class TestBaseFee:
    def test_full_block_raises_base_fee(self):
        chain = Chain(gas_limit=4 * INTRINSIC_GAS, initial_base_fee=1000)
        wallet = Wallet("w")
        factory = TransactionFactory()
        txs = [
            factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
            for _ in range(4)
        ]
        chain.append("m", 0.0, txs)
        assert chain.base_fee > 1000

    def test_empty_block_lowers_base_fee(self):
        chain = Chain(gas_limit=4 * INTRINSIC_GAS, initial_base_fee=1000)
        chain.append("m", 0.0, [])
        assert chain.base_fee < 1000

    def test_half_full_block_keeps_base_fee(self):
        chain = Chain(gas_limit=4 * INTRINSIC_GAS, initial_base_fee=1000)
        wallet = Wallet("w")
        factory = TransactionFactory()
        txs = [
            factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
            for _ in range(2)
        ]
        chain.append("m", 0.0, txs)
        assert chain.base_fee == 1000

    def test_zero_base_fee_stays_zero(self):
        chain = Chain(gas_limit=4 * INTRINSIC_GAS, initial_base_fee=0)
        chain.append("m", 0.0, [])
        assert chain.base_fee == 0


def build_mining_network(gas_limit_txs=3):
    network = Network(seed=4)
    network.chain = Chain(gas_limit=gas_limit_txs * INTRINSIC_GAS)
    config = NodeConfig(policy=GETH.scaled(64))
    for i in range(3):
        network.create_node(f"n{i}", config)
    network.connect("n0", "n1")
    network.connect("n1", "n2")
    return network


class TestMiner:
    def test_miner_picks_highest_prices_first(self, wallet, factory):
        network = build_mining_network(gas_limit_txs=2)
        node = network.node("n0")
        prices = [gwei(1), gwei(5), gwei(3)]
        txs = [
            factory.transfer(wallet.fresh_account(), gas_price=p) for p in prices
        ]
        for tx in txs:
            node.submit_transaction(tx)
        miner = Miner(node, network.chain, block_interval=10.0)
        block = miner.mine_block()
        assert [t.gas_price for t in block.txs] == [gwei(5), gwei(3)]

    def test_min_gas_price_floor_excludes_dust(self, wallet, factory):
        network = build_mining_network()
        node = network.node("n0")
        cheap = factory.transfer(wallet.fresh_account(), gas_price=10)
        node.submit_transaction(cheap)
        miner = Miner(node, network.chain, min_gas_price=100)
        block = miner.mine_block()
        assert block.txs == ()
        assert cheap.hash in node.mempool  # left pending, not dropped

    def test_block_gossip_cleans_remote_mempools(self, wallet, factory):
        network = build_mining_network()
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("n0").submit_transaction(tx)
        network.run(2.0)  # propagate to all pools
        assert tx.hash in network.node("n2").mempool
        miner = Miner(network.node("n0"), network.chain)
        miner.mine_block()
        network.run(2.0)  # block gossip
        assert tx.hash not in network.node("n2").mempool
        assert network.node("n2").head_number == 1
        assert network.node("n2").confirmed_nonce(tx.sender) == 1

    def test_never_includes_future_transactions(self, wallet, factory):
        network = build_mining_network()
        node = network.node("n0")
        future = factory.future(wallet.fresh_account(), gas_price=gwei(100))
        node.submit_transaction(future)
        miner = Miner(node, network.chain)
        block = miner.mine_block()
        assert future.hash not in {t.hash for t in block.txs}

    def test_never_includes_already_mined(self, wallet, factory):
        network = build_mining_network()
        node = network.node("n0")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        node.submit_transaction(tx)
        miner = Miner(node, network.chain)
        first = miner.mine_block()
        assert tx.hash in {t.hash for t in first.txs}
        # Simulate the pool not having pruned yet, then mine again.
        second = miner.mine_block()
        assert tx.hash not in {t.hash for t in second.txs}

    def test_periodic_mining(self, wallet, factory):
        network = build_mining_network()
        miner = Miner(
            network.node("n0"), network.chain, block_interval=5.0, poisson=False
        )
        miner.start(initial_delay=5.0)
        network.run(26.0)
        assert network.chain.height == 5
        miner.stop()
        network.run(20.0)
        assert network.chain.height == 5


class TestMiner1559:
    def test_miner_orders_by_effective_price_under_base_fee(self, wallet):
        """With a base fee active, a capped-max-fee transaction pays less
        than a high-tip one even if its max fee is bigger; the miner must
        order by *effective* price."""
        from repro.eth.chain import Chain
        from repro.eth.policies import GETH

        network = Network(seed=14)
        network.chain = Chain(
            gas_limit=1 * INTRINSIC_GAS, initial_base_fee=gwei(1.0)
        )
        policy = GETH.scaled(64).with_base_fee_enforcement()
        node = network.create_node("m", NodeConfig(policy=policy))
        node.mempool.base_fee = gwei(1.0)
        factory = TransactionFactory()
        # Big max fee, tiny tip: effective = base + 0.01 = 1.01 gwei.
        low_tip = factory.dynamic_transfer(
            wallet.fresh_account(), max_fee=gwei(5.0), priority_fee=gwei(0.01)
        )
        # Smaller max fee, fat tip: effective = base + 1.0 = 2.0 gwei.
        high_tip = factory.dynamic_transfer(
            wallet.fresh_account(), max_fee=gwei(2.0), priority_fee=gwei(1.0)
        )
        node.submit_transaction(low_tip)
        node.submit_transaction(high_tip)
        miner = Miner(node, network.chain)
        block = miner.mine_block()
        assert [tx.hash for tx in block.txs] == [high_tip.hash]

    def test_underpriced_1559_tx_never_mined(self, wallet):
        from repro.eth.chain import Chain
        from repro.eth.policies import GETH

        network = Network(seed=15)
        network.chain = Chain(
            gas_limit=4 * INTRINSIC_GAS, initial_base_fee=gwei(2.0)
        )
        policy = GETH.scaled(64).with_base_fee_enforcement()
        node = network.create_node("m", NodeConfig(policy=policy))
        # Pool admitted it earlier at a lower base fee...
        cheap = TransactionFactory().dynamic_transfer(
            wallet.fresh_account(), max_fee=gwei(1.0), priority_fee=gwei(0.5)
        )
        node.mempool.add(cheap)
        # ...but the current base fee exceeds its max fee: not minable.
        block = Miner(node, network.chain).mine_block()
        assert cheap.hash not in {tx.hash for tx in block.txs}


class TestBlockIdentity:
    def test_block_hash_depends_on_contents(self, wallet, factory):
        tx = factory.transfer(wallet.fresh_account(), gas_price=1)
        a = Block(number=1, miner="m", timestamp=0.0, txs=(tx,))
        b = Block(number=1, miner="m", timestamp=0.0, txs=())
        assert a.hash != b.hash
