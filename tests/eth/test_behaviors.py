"""Tests for the Byzantine per-node behavior model (repro.eth.behaviors)."""

import pytest

from repro.errors import BehaviorPlanError
from repro.eth.behaviors import (
    BEHAVIOR_KINDS,
    BehaviorMix,
    BehaviorSet,
    _censored,
    assign_behaviors,
)
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.messages import Transactions
from repro.eth.supernode import Supernode
from repro.eth.transaction import Transaction, gwei
from repro.netgen.ethereum import quick_network


def make_line(n=3, seed=11, **config_overrides):
    network = Network(seed=seed)
    config = NodeConfig(policy=GETH.scaled(64), **config_overrides)
    for i in range(n):
        network.create_node(f"n{i}", config)
    for i in range(n - 1):
        network.connect(f"n{i}", f"n{i + 1}")
    return network


class TestBehaviorMix:
    def test_fraction_out_of_range_raises(self):
        with pytest.raises(BehaviorPlanError):
            BehaviorMix(censor=1.5)
        with pytest.raises(BehaviorPlanError):
            BehaviorMix(spoof_relay=-0.1)

    def test_fractions_summing_over_one_raise(self):
        with pytest.raises(BehaviorPlanError):
            BehaviorMix(censor=0.6, spoof_relay=0.5)

    def test_bad_knobs_raise(self):
        with pytest.raises(BehaviorPlanError):
            BehaviorMix(censor_selectivity=2.0)
        with pytest.raises(BehaviorPlanError):
            BehaviorMix(spam_fanout=0)

    def test_uniform_spreads_evenly(self):
        mix = BehaviorMix.uniform(0.6)
        assert mix.total_fraction == pytest.approx(0.6)
        shares = {getattr(mix, kind) for kind in BEHAVIOR_KINDS}
        assert len(shares) == 1  # all kinds get the same share

    def test_from_spec_parses(self):
        mix = BehaviorMix.from_spec("spoof_relay:0.2, censor:0.1")
        assert mix.spoof_relay == pytest.approx(0.2)
        assert mix.censor == pytest.approx(0.1)
        assert mix.lazy_relay == 0.0

    @pytest.mark.parametrize(
        "spec", ["", "gremlin:0.2", "censor=0.1", "censor:lots"]
    )
    def test_from_spec_rejects_garbage(self, spec):
        with pytest.raises(BehaviorPlanError):
            BehaviorMix.from_spec(spec)

    def test_scaled_keeps_relative_weights(self):
        mix = BehaviorMix(spoof_relay=0.4, censor=0.2).scaled(0.5)
        assert mix.spoof_relay == pytest.approx(0.2)
        assert mix.censor == pytest.approx(0.1)
        with pytest.raises(BehaviorPlanError):
            mix.scaled(-1.0)

    def test_describe_and_enabled(self):
        assert BehaviorMix().describe() == "all-honest"
        assert not BehaviorMix().enabled
        mix = BehaviorMix(censor=0.25)
        assert mix.enabled
        assert "censor=0.250" in mix.describe()


class TestAssignment:
    def test_assignment_is_a_function_of_seed_and_mix(self):
        mix = BehaviorMix.uniform(0.5)
        first = assign_behaviors(quick_network(n_nodes=16, seed=3), mix)
        second = assign_behaviors(quick_network(n_nodes=16, seed=3), mix)
        assert first == second
        assert first  # a 50% mix on 16 nodes draws someone

    def test_different_seed_differs(self):
        mix = BehaviorMix.uniform(0.5)
        a = assign_behaviors(quick_network(n_nodes=16, seed=3), mix)
        b = assign_behaviors(quick_network(n_nodes=16, seed=4), mix)
        assert a != b

    def test_supernodes_never_drawn(self):
        network = quick_network(n_nodes=12, seed=5)
        Supernode.join(network)
        assignment = assign_behaviors(network, BehaviorMix.uniform(1.0))
        assert not set(assignment) & network.supernode_ids
        # fraction 1.0 covers every eligible node
        assert set(assignment) == set(network.node_ids) - network.supernode_ids

    def test_install_behaviors_sets_signature_deterministically(self):
        mix = BehaviorMix.uniform(0.5)
        nets = [quick_network(n_nodes=16, seed=3) for _ in range(2)]
        sigs = [net.install_behaviors(mix).signature() for net in nets]
        assert sigs[0] == sigs[1]
        for net in nets:
            net.clear_behaviors()
            assert net.behaviors is None


class TestInstallLifecycle:
    def test_install_and_uninstall_restore_node_exactly(self):
        network = make_line(3)
        node = network.node("n1")
        original_dispatch = dict(node._dispatch)
        original_policy = node.mempool.policy
        original_config = node.config
        behavior_set = BehaviorSet(network, BehaviorMix())
        for kind in BEHAVIOR_KINDS:
            behavior_set.install_on(node, kind=kind)
            assert node.behavior == kind
            behavior_set.uninstall_all()
            assert node.behavior is None
            assert node._dispatch == original_dispatch
            assert node.mempool.policy is original_policy
            assert node.config is original_config
            assert "broadcast_transaction" not in node.__dict__

    def test_double_install_raises(self):
        network = make_line(2)
        behavior_set = BehaviorSet(network, BehaviorMix())
        behavior_set.install_on(network.node("n0"), "censor")
        with pytest.raises(BehaviorPlanError):
            behavior_set.install_on(network.node("n0"), "lazy_relay")

    def test_supernode_install_refused(self):
        network = quick_network(n_nodes=8, seed=2)
        supernode = Supernode.join(network)
        behavior_set = BehaviorSet(network, BehaviorMix())
        with pytest.raises(BehaviorPlanError):
            behavior_set.install_on(network.node(supernode.id), "censor")

    def test_unknown_kind_refused(self):
        network = make_line(2)
        behavior_set = BehaviorSet(network, BehaviorMix())
        with pytest.raises(BehaviorPlanError):
            behavior_set.install_on(network.node("n0"), "gremlin")


class TestBehaviorEffects:
    def test_censor_drops_matching_hashes(self, wallet, factory):
        network = make_line(3)
        behavior_set = BehaviorSet(
            network, BehaviorMix(censor_selectivity=1.0)
        )
        behavior_set.install_on(network.node("n1"), "censor")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        assert _censored(tx.hash, 1.0)
        network.node("n0").submit_transaction(tx)
        network.run(10.0)
        assert tx.hash in network.node("n1").mempool  # admitted...
        assert tx.hash not in network.node("n2").mempool  # ...never relayed
        assert behavior_set.counts["censor"] >= 1

    def test_lazy_relay_announces_but_never_serves(self, wallet, factory):
        network = make_line(2)
        behavior_set = BehaviorSet(network, BehaviorMix())
        behavior_set.install_on(network.node("n0"), "lazy_relay")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("n0").submit_transaction(tx)
        network.run(10.0)
        assert tx.hash not in network.node("n1").mempool
        assert behavior_set.counts["lazy_relay"] >= 1  # dropped the request

    def test_spoof_relay_carries_rejected_tx_to_nonconforming_peer(
        self, wallet, factory
    ):
        # The false-positive chain the hardened verdicts must defeat: a
        # spoofing relay re-broadcasts a body its own pool rejected, and a
        # R=0 neighbour admits the under-bumped replacement.
        network = make_line(3)
        behavior_set = BehaviorSet(network, BehaviorMix())
        behavior_set.install_on(network.node("n1"), "spoof_relay")
        behavior_set.install_on(network.node("n2"), "nonconforming_replacer")
        account = wallet.fresh_account()
        original = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        network.node("n0").submit_transaction(original)
        network.run(10.0)
        weak = Transaction(
            sender=account.address, nonce=0, gas_price=int(gwei(1.02))
        )
        network.send("n0", "n1", Transactions(txs=(weak,)))
        network.run(10.0)
        assert weak.hash not in network.node("n1").mempool  # n1 rejected it
        assert weak.hash in network.node("n2").mempool  # ...yet n2 got it
        assert behavior_set.counts["spoof_relay"] >= 1
        assert behavior_set.counts["nonconforming_replacer"] >= 1

    def test_honest_line_blocks_the_same_chain(self, wallet, factory):
        network = make_line(3)
        account = wallet.fresh_account()
        original = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        network.node("n0").submit_transaction(original)
        network.run(10.0)
        weak = Transaction(
            sender=account.address, nonce=0, gas_price=int(gwei(1.02))
        )
        network.send("n0", "n1", Transactions(txs=(weak,)))
        network.run(10.0)
        assert weak.hash not in network.node("n2").mempool

    def test_stale_client_forwards_future_transactions(self, wallet, factory):
        network = make_line(3)
        behavior_set = BehaviorSet(network, BehaviorMix())
        behavior_set.install_on(network.node("n0"), "stale_client")
        future = factory.future(wallet.fresh_account(), gas_price=gwei(5))
        network.node("n0").submit_transaction(future)
        network.run(10.0)
        assert future.hash in network.node("n1").mempool

    def test_duplicate_spammer_repushes_known_bodies(self, wallet, factory):
        network = make_line(3)
        behavior_set = BehaviorSet(
            network, BehaviorMix(spam_rate=1.0, spam_fanout=2)
        )
        behavior_set.install_on(network.node("n1"), "duplicate_spammer")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("n0").submit_transaction(tx)
        network.run(10.0)
        assert behavior_set.counts["duplicate_spammer"] >= 1

    def test_uninstalled_network_behaves_honestly_again(self, wallet, factory):
        network = make_line(3)
        behavior_set = BehaviorSet(
            network, BehaviorMix(censor_selectivity=1.0)
        )
        behavior_set.install_on(network.node("n1"), "censor")
        behavior_set.uninstall_all()
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("n0").submit_transaction(tx)
        network.run(10.0)
        assert tx.hash in network.node("n2").mempool


class TestComposition:
    def test_behaviors_compose_with_fault_plan(self, wallet, factory):
        from repro.sim.faults import FaultPlan

        network = quick_network(n_nodes=10, seed=6)
        network.install_behaviors(BehaviorMix.uniform(0.3))
        network.install_faults(FaultPlan(loss_rate=0.05))
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        first = sorted(network.measurable_node_ids())[0]
        network.node(first).submit_transaction(tx)
        network.run(20.0)  # nothing blows up; weather + adversary coexist
        network.clear_faults()
        network.clear_behaviors()
        assert network.behaviors is None and network.faults is None
