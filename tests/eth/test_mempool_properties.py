"""Property-based tests of mempool invariants (hypothesis).

A random sequence of operations must never break the structural invariants
checked by :meth:`Mempool.check_invariants`: capacity bound, disjoint and
covering pending/future sets, contiguous pending runs per sender.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eth.mempool import AddOutcome, Mempool
from repro.eth.policies import GETH, PARITY, MempoolPolicy
from repro.eth.transaction import Transaction

SENDERS = [f"0xsender{i}" for i in range(6)]

operations = st.lists(
    st.tuples(
        st.sampled_from(SENDERS),
        st.integers(min_value=0, max_value=8),  # nonce
        st.integers(min_value=1, max_value=1000),  # price
    ),
    min_size=1,
    max_size=120,
)


def build_tx(sender: str, nonce: int, price: int) -> Transaction:
    return Transaction(sender=sender, nonce=nonce, gas_price=price)


@pytest.mark.parametrize(
    "policy",
    [GETH.scaled(16), PARITY.scaled(24), GETH.scaled(64)],
    ids=["geth-16", "parity-24", "geth-64"],
)
@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_invariants_hold_under_arbitrary_adds(policy: MempoolPolicy, ops):
    pool = Mempool(policy)
    for sender, nonce, price in ops:
        pool.add(build_tx(sender, nonce, price))
        pool.check_invariants()
    assert len(pool) <= policy.capacity


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_capacity_is_never_exceeded(ops):
    policy = GETH.scaled(8)
    pool = Mempool(policy)
    for sender, nonce, price in ops:
        pool.add(build_tx(sender, nonce, price))
        assert len(pool) <= policy.capacity


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_pending_and_future_partition_the_pool(ops):
    pool = Mempool(GETH.scaled(32))
    for sender, nonce, price in ops:
        pool.add(build_tx(sender, nonce, price))
    assert pool.pending_count + pool.future_count == len(pool)


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_replacement_never_changes_pool_size(ops):
    """A REPLACED outcome swaps one transaction for another in place."""
    pool = Mempool(GETH.scaled(32))
    for sender, nonce, price in ops:
        before = len(pool)
        result = pool.add(build_tx(sender, nonce, price))
        if result.outcome is AddOutcome.REPLACED:
            assert len(pool) == before

@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_admitted_transaction_is_queryable(ops):
    pool = Mempool(GETH.scaled(32))
    for sender, nonce, price in ops:
        tx = build_tx(sender, nonce, price)
        result = pool.add(tx)
        if result.admitted:
            assert pool.get(tx.hash) is tx
            assert pool.sender_transaction(sender, nonce) is tx


@given(ops=operations, confirmed=st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_no_stale_nonces_survive(ops, confirmed):
    pool = Mempool(GETH.scaled(32), confirmed_nonce=lambda s: confirmed)
    for sender, nonce, price in ops:
        result = pool.add(build_tx(sender, nonce, price))
        if nonce < confirmed:
            assert result.outcome is AddOutcome.REJECTED_STALE_NONCE
    for tx in pool.all_transactions():
        assert tx.nonce >= confirmed


@given(
    ops=operations,
    block_senders=st.lists(st.sampled_from(SENDERS), max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_invariants_survive_block_application(ops, block_senders):
    nonces = {}
    pool = Mempool(GETH.scaled(32), confirmed_nonce=lambda s: nonces.get(s, 0))
    for sender, nonce, price in ops:
        pool.add(build_tx(sender, nonce, price))
    included = []
    for sender in block_senders:
        tx = pool.sender_transaction(sender, nonces.get(sender, 0))
        if tx is not None:
            nonces[sender] = tx.nonce + 1
            included.append(tx)
    pool.apply_block(included)
    pool.check_invariants()
    for tx in included:
        assert tx.hash not in pool
