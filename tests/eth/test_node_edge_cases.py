"""Edge cases in node/network behaviour: churn, in-flight messages,
peer-state hygiene."""

import pytest

from repro.eth.messages import Transactions
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei


@pytest.fixture
def pair_network(wallet, factory):
    network = Network(seed=44)
    config = NodeConfig(policy=GETH.scaled(64))
    network.create_node("a", config)
    network.create_node("b", config)
    network.create_node("c", config)
    network.connect("a", "b")
    network.connect("b", "c")
    return network


class TestChurn:
    def test_in_flight_message_after_disconnect_is_dropped(
        self, pair_network, wallet, factory
    ):
        pair_network.run(1.0)  # let the handshake Status messages land
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pair_network.send("a", "b", Transactions(txs=(tx,)))
        pair_network.disconnect("a", "b")  # message still in flight
        pair_network.run(5.0)
        # The link is gone, so the in-flight segment dies with it: a closed
        # TCP session delivers nothing, and neither do we.
        assert tx.hash not in pair_network.node("b").mempool
        assert pair_network.messages_dropped == 1
        assert pair_network.drops_by_reason == {"link_vanished": 1}

    def test_in_flight_drop_emits_trace_record(self, wallet, factory):
        from repro.sim.engine import Simulator

        network = Network(sim=Simulator(seed=44, trace=True))
        config = NodeConfig(policy=GETH.scaled(64))
        network.create_node("a", config)
        network.create_node("b", config)
        network.connect("a", "b")
        network.run(1.0)  # let the handshake Status messages land
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.send("a", "b", Transactions(txs=(tx,)))
        network.disconnect("a", "b")
        network.run(5.0)
        drops = network.sim.tracer.filter(kind="drop")
        assert len(drops) == 1
        assert "link_vanished" in drops[0].detail

    def test_queued_broadcast_to_removed_peer_is_dropped(
        self, pair_network, wallet, factory
    ):
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        node_b = pair_network.node("b")
        node_b.submit_transaction(tx)  # queues pushes to a and c
        pair_network.disconnect("b", "c")  # before the flush fires
        pair_network.run(5.0)
        assert tx.hash in pair_network.node("a").mempool
        assert tx.hash not in pair_network.node("c").mempool

    def test_reconnect_restarts_clean_peer_state(self, pair_network, wallet, factory):
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pair_network.node("a").submit_transaction(tx)
        pair_network.run(5.0)
        assert pair_network.node("a").knows("b", tx.hash)
        pair_network.disconnect("a", "b")
        pair_network.connect("a", "b")
        assert not pair_network.node("a").knows("b", tx.hash)


class TestSupernodeEdgeCases:
    def test_duplicate_observation_kept_once(self, pair_network, wallet, factory):
        supernode = Supernode.join(pair_network)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        supernode.handle_message("a", Transactions(txs=(tx,)))
        supernode.handle_message("a", Transactions(txs=(tx,)))
        assert len(supernode.observations) == 1

    def test_send_empty_batch_is_noop(self, pair_network):
        supernode = Supernode.join(pair_network)
        before = pair_network.messages_sent
        supernode.send_transactions("a", [])
        assert pair_network.messages_sent == before

    def test_join_twice_with_different_ids(self, pair_network):
        first = Supernode.join(pair_network, node_id="m1")
        second = Supernode.join(pair_network, node_id="m2")
        # m2 connects to all nodes including m1 (it was present already).
        assert pair_network.are_connected("m1", "m2")
        assert first.degree == 4
        assert pair_network.ground_truth_graph().number_of_nodes() == 3


class TestExpiryMaintenance:
    def test_expire_transactions_on_node(self, pair_network, wallet, factory):
        node = pair_network.node("a")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        node.submit_transaction(tx)
        pair_network.run(5.0)
        # Not yet expired.
        assert node.expire_transactions() == []
        # Force the clock past the policy expiry.
        node.sim.schedule(node.config.policy.expiry_seconds + 10, lambda: None)
        node.sim.run()
        dropped = node.expire_transactions()
        assert tx.hash in {t.hash for t in dropped}
