"""Tests for the Table 3 client policy presets."""

import pytest

from repro.eth.policies import (
    ALETH,
    BESU,
    CLIENT_POLICIES,
    GETH,
    NETHERMIND,
    PARITY,
    MempoolPolicy,
    policy_by_name,
)


class TestTable3Values:
    """The presets must match the paper's Table 3 exactly."""

    def test_geth(self):
        assert GETH.replace_bump == 0.10
        assert GETH.future_limit_per_account == 4096
        assert GETH.eviction_pending_floor == 0
        assert GETH.capacity == 5120

    def test_parity(self):
        assert PARITY.replace_bump == 0.125
        assert PARITY.future_limit_per_account == 81
        assert PARITY.eviction_pending_floor == 2000
        assert PARITY.capacity == 8192

    def test_nethermind(self):
        assert NETHERMIND.replace_bump == 0.0
        assert NETHERMIND.future_limit_per_account == 17
        assert NETHERMIND.capacity == 2048

    def test_besu(self):
        assert BESU.replace_bump == 0.10
        assert BESU.future_limit_per_account is None  # infinity
        assert BESU.capacity == 4096

    def test_aleth(self):
        assert ALETH.replace_bump == 0.0
        assert ALETH.future_limit_per_account == 1
        assert ALETH.capacity == 2048

    def test_deployment_shares_roughly_sum_to_one(self):
        total = sum(p.deployment_share for p in CLIENT_POLICIES.values())
        assert 0.99 <= total <= 1.01

    def test_geth_dominates_deployment(self):
        assert GETH.deployment_share > 0.8


class TestMeasurability:
    def test_geth_parity_besu_measurable(self):
        assert GETH.measurable and PARITY.measurable and BESU.measurable

    def test_nethermind_aleth_not_measurable(self):
        """R=0 removes the isolation price band (Section 5.1)."""
        assert not NETHERMIND.measurable
        assert not ALETH.measurable


class TestReplacementRule:
    def test_exact_bump_allowed(self):
        assert GETH.replacement_allowed(1000, 1100)

    def test_below_bump_denied(self):
        assert not GETH.replacement_allowed(1000, 1099)

    def test_zero_bump_equal_price_allowed(self):
        assert ALETH.replacement_allowed(1000, 1000)

    def test_lower_price_always_denied(self):
        assert not ALETH.replacement_allowed(1000, 999)


class TestScaling:
    def test_scaled_keeps_bump(self):
        scaled = GETH.scaled(256)
        assert scaled.replace_bump == GETH.replace_bump
        assert scaled.capacity == 256

    def test_scaled_shrinks_u_and_p_proportionally(self):
        scaled = PARITY.scaled(1024)
        ratio = 1024 / PARITY.capacity
        assert scaled.eviction_pending_floor == int(2000 * ratio + 0.999)
        assert scaled.future_limit_per_account >= 1

    def test_scaled_zero_floor_stays_zero(self):
        assert GETH.scaled(64).eviction_pending_floor == 0

    def test_scaled_nonzero_floor_never_becomes_zero(self):
        assert PARITY.scaled(8).eviction_pending_floor >= 1

    def test_scaled_unlimited_u_stays_unlimited(self):
        assert BESU.scaled(64).future_limit_per_account is None

    def test_scaled_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            GETH.scaled(0)


class TestVariants:
    def test_with_capacity(self):
        custom = GETH.with_capacity(9999)
        assert custom.capacity == 9999
        assert custom.replace_bump == GETH.replace_bump

    def test_with_bump(self):
        custom = GETH.with_bump(0.25)
        assert custom.replace_bump == 0.25
        assert not custom.replacement_allowed(1000, 1100)

    def test_with_base_fee_enforcement(self):
        assert GETH.with_base_fee_enforcement().enforce_base_fee
        assert not GETH.enforce_base_fee

    def test_lookup_by_name(self):
        assert policy_by_name("GETH") is GETH
        assert policy_by_name("parity") is PARITY
        with pytest.raises(KeyError):
            policy_by_name("trinity")  # discarded: incomplete implementation

    def test_validation_rejects_negative_params(self):
        with pytest.raises(ValueError):
            MempoolPolicy("x", -0.1, None, 0, 10)
        with pytest.raises(ValueError):
            MempoolPolicy("x", 0.1, None, -1, 10)
        with pytest.raises(ValueError):
            MempoolPolicy("x", 0.1, None, 0, 0)
