"""Property and equivalence tests for :meth:`Mempool.add_batch`.

The batched path defers eviction-heap maintenance to one rebuild per
batch; these tests pin its contract: identical canonical state (transaction
set, pending/future split, stats) to sequential :meth:`Mempool.add`, and
identical *heap entries* to the legacy prefill loop on cleared pools (the
golden-fingerprint safety argument).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eth.mempool import AddOutcome, Mempool
from repro.eth.policies import GETH, PARITY, MempoolPolicy
from repro.eth.transaction import Transaction, TransactionFactory, gwei

SENDERS = [f"0xbatch{i}" for i in range(6)]

operations = st.lists(
    st.tuples(
        st.sampled_from(SENDERS),
        st.integers(min_value=0, max_value=8),  # nonce
        st.integers(min_value=1, max_value=1000),  # price
    ),
    min_size=1,
    max_size=150,
)


def build_tx(sender: str, nonce: int, price: int) -> Transaction:
    return Transaction(sender=sender, nonce=nonce, gas_price=price)


def canonical_state(pool: Mempool):
    return (
        sorted(pool._by_hash),
        sorted(pool._pending),
        sorted(pool._future),
        {
            sender: sorted(txs)
            for sender, txs in pool._by_sender.items()
            if txs
        },
        pool.stats,
    )


@pytest.mark.parametrize(
    "policy",
    [GETH.scaled(16), PARITY.scaled(24), GETH.scaled(128)],
    ids=["geth-16", "parity-24", "geth-128"],
)
@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_batch_matches_sequential_canonical_state(policy: MempoolPolicy, ops):
    txs = [build_tx(*op) for op in ops]
    sequential = Mempool(policy)
    for tx in txs:
        sequential.add(tx)
    batched = Mempool(policy)
    counts = batched.add_batch(txs)
    batched.check_invariants()
    assert canonical_state(batched) == canonical_state(sequential)
    admitted = sum(
        counts.get(key, 0)
        for key in ("admitted_pending", "admitted_future", "replaced")
    )
    assert admitted <= len(txs)


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_batch_then_more_adds_stay_consistent(ops):
    """The rebuilt heaps must keep serving later sequential evictions."""
    policy = GETH.scaled(16)
    txs = [build_tx(*op) for op in ops]
    pool = Mempool(policy)
    pool.add_batch(txs)
    factory = TransactionFactory()
    from repro.eth.account import Wallet

    wallet = Wallet("after-batch")
    for _ in range(24):
        pool.add(
            factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0))
        )
        pool.check_invariants()
    assert len(pool) <= policy.capacity


class TestStopWhenFull:
    def _legacy_prefill(self, pool, txs):
        for tx in txs:
            if pool.is_full:
                break
            pool.add(tx)

    def _shared_txs(self, count, prices=None):
        factory = TransactionFactory()
        from repro.eth.account import Wallet

        wallet = Wallet("prefill-eq")
        prices = prices or [gwei(1.0) + i * 10**7 for i in range(count)]
        return [
            factory.transfer(wallet.fresh_account(), gas_price=prices[i])
            for i in range(count)
        ]

    def test_matches_legacy_loop_exactly(self):
        policy = GETH.scaled(64)
        txs = self._shared_txs(100)
        legacy = Mempool(policy)
        self._legacy_prefill(legacy, txs)
        batched = Mempool(policy)
        batched.add_batch(txs, stop_when_full=True)
        batched.check_invariants()
        assert canonical_state(batched) == canonical_state(legacy)

    def test_heap_entries_identical_on_cleared_pool(self):
        """On a cleared pool the rebuilt eviction heap carries the exact
        (price, seq, hash) multiset sequential adds would have pushed —
        downstream victim selection is byte-identical."""
        policy = GETH.scaled(32)
        txs = self._shared_txs(48)
        legacy = Mempool(policy)
        self._legacy_prefill(legacy, txs)
        batched = Mempool(policy)
        batched.add_batch(txs, stop_when_full=True)
        assert sorted(batched._pending_heap) == sorted(legacy._pending_heap)
        assert sorted(batched._future_heap) == sorted(legacy._future_heap)

    def test_never_evicts(self):
        policy = GETH.scaled(8)
        txs = self._shared_txs(50)
        pool = Mempool(policy)
        counts = pool.add_batch(txs, stop_when_full=True)
        assert len(pool) == 8
        assert "evictions" not in counts
        assert pool.stats["evictions"] == 0


class TestEvictionFallback:
    def test_overflow_falls_back_to_sequential_eviction(self):
        policy = GETH.scaled(16)
        factory = TransactionFactory()
        from repro.eth.account import Wallet

        wallet = Wallet("overflow")
        cheap = [
            factory.transfer(wallet.fresh_account(), gas_price=gwei(1.0))
            for _ in range(16)
        ]
        rich = [
            factory.transfer(wallet.fresh_account(), gas_price=gwei(5.0))
            for _ in range(8)
        ]
        pool = Mempool(policy)
        counts = pool.add_batch(cheap + rich)
        pool.check_invariants()
        assert len(pool) == 16
        assert counts.get("evictions", 0) >= 8
        # The cheap cohort was evicted in favor of the rich one.
        prices = sorted(pool.pending_prices(), reverse=True)
        assert prices[:8] == [gwei(5.0)] * 8

    def test_empty_batch_is_a_no_op(self):
        pool = Mempool(GETH.scaled(8))
        assert pool.add_batch([]) == {}
        assert len(pool) == 0

    def test_fee_floor_counted_in_batch(self):
        from repro.eth.fee_market import FeeMarket, FeeMarketConfig

        pool = Mempool(GETH.scaled(32))
        pool.fee_market = FeeMarket(FeeMarketConfig(min_floor=gwei(1.0)))
        factory = TransactionFactory()
        from repro.eth.account import Wallet

        wallet = Wallet("floored")
        txs = [
            factory.transfer(wallet.fresh_account(), gas_price=gwei(0.5))
            for _ in range(5)
        ] + [
            factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0))
            for _ in range(3)
        ]
        counts = pool.add_batch(txs)
        assert counts["rejected_fee_floor"] == 5
        assert counts["admitted_pending"] == 3
        assert len(pool) == 3
