"""EIP-1559 mempool behaviour (Appendix E).

"Under EIP1559, the mempool uses the max fee to make admission/eviction
decisions. [...] when a pending transaction's max fee is below the base fee
the transaction becomes underpriced and is dropped."
"""

import pytest

from repro.eth.mempool import AddOutcome, Mempool
from repro.eth.policies import GETH
from repro.eth.transaction import DynamicFeeTransaction, gwei


@pytest.fixture
def fee_pool():
    pool = Mempool(policy=GETH.scaled(64).with_base_fee_enforcement())
    pool.base_fee = gwei(1.0)
    return pool


def dyn_tx(wallet, max_fee, priority_fee=0, nonce=0):
    account = wallet.fresh_account()
    return DynamicFeeTransaction(
        sender=account.address,
        nonce=nonce,
        gas_price=max_fee,
        max_fee=max_fee,
        priority_fee=priority_fee,
    )


class TestAdmission:
    def test_max_fee_above_base_admitted(self, fee_pool, wallet):
        tx = dyn_tx(wallet, max_fee=gwei(2.0), priority_fee=gwei(0.1))
        assert fee_pool.add(tx).outcome is AddOutcome.ADMITTED_PENDING

    def test_max_fee_below_base_rejected(self, fee_pool, wallet):
        tx = dyn_tx(wallet, max_fee=gwei(0.5))
        assert fee_pool.add(tx).outcome is AddOutcome.REJECTED_BASE_FEE

    def test_legacy_txs_held_to_same_rule(self, fee_pool, wallet, factory):
        cheap = factory.transfer(wallet.fresh_account(), gas_price=gwei(0.5))
        assert fee_pool.add(cheap).outcome is AddOutcome.REJECTED_BASE_FEE
        rich = factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0))
        assert fee_pool.add(rich).admitted

    def test_non_enforcing_pool_ignores_base_fee(self, wallet):
        pool = Mempool(policy=GETH.scaled(64))
        pool.base_fee = gwei(10.0)
        tx = dyn_tx(wallet, max_fee=gwei(0.5))
        assert pool.add(tx).admitted


class TestReplacementByMaxFee:
    def test_replacement_compares_max_fees(self, fee_pool, wallet):
        account = wallet.fresh_account()
        original = DynamicFeeTransaction(
            sender=account.address, nonce=0, gas_price=0,
            max_fee=gwei(2.0), priority_fee=gwei(0.1),
        )
        fee_pool.add(original)
        bumped = DynamicFeeTransaction(
            sender=account.address, nonce=0, gas_price=0,
            max_fee=gwei(2.2), priority_fee=gwei(0.2),
        )
        assert fee_pool.add(bumped).outcome is AddOutcome.REPLACED

    def test_insufficient_max_fee_bump_rejected(self, fee_pool, wallet):
        account = wallet.fresh_account()
        original = DynamicFeeTransaction(
            sender=account.address, nonce=0, gas_price=0,
            max_fee=gwei(2.0), priority_fee=gwei(0.1),
        )
        fee_pool.add(original)
        weak = DynamicFeeTransaction(
            sender=account.address, nonce=0, gas_price=0,
            max_fee=gwei(2.1), priority_fee=gwei(2.1),
        )
        assert (
            fee_pool.add(weak).outcome
            is AddOutcome.REJECTED_UNDERPRICED_REPLACEMENT
        )


class TestBaseFeeUpdates:
    def test_rising_base_fee_drops_underpriced(self, fee_pool, wallet):
        survivor = dyn_tx(wallet, max_fee=gwei(5.0))
        victim = dyn_tx(wallet, max_fee=gwei(2.0))
        fee_pool.add(survivor)
        fee_pool.add(victim)
        dropped = fee_pool.apply_block([], new_base_fee=gwei(3.0))
        assert victim.hash in {t.hash for t in dropped}
        assert survivor.hash in fee_pool
        fee_pool.check_invariants()

    def test_falling_base_fee_drops_nothing(self, fee_pool, wallet):
        tx = dyn_tx(wallet, max_fee=gwei(2.0))
        fee_pool.add(tx)
        dropped = fee_pool.apply_block([], new_base_fee=gwei(0.5))
        assert dropped == []
        assert tx.hash in fee_pool
