"""The Rinkeby future-echo quirk (Appendix D) and its harmlessness to M."""

import pytest

from repro.core.config import MeasurementConfig
from repro.core.primitive import measure_one_link
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.workloads import prefill_mempools


@pytest.fixture
def echo_network(factory, wallet):
    network = Network(seed=91)
    base = GETH.scaled(128)
    network.create_node("echo", NodeConfig(policy=base, echoes_future_to_sender=True))
    network.create_node("b", NodeConfig(policy=base))
    network.create_node("c", NodeConfig(policy=base))
    network.connect("echo", "b")
    network.connect("b", "c")
    network.connect("echo", "c")
    return network


class TestFutureEcho:
    def test_future_tx_echoed_back_to_sender(self, echo_network, wallet, factory):
        supernode = Supernode.join(echo_network)
        future = factory.future(wallet.fresh_account(), gas_price=gwei(2.0))
        supernode.send_transactions("echo", [future])
        echo_network.run(2.0)
        # The echo node bounced the future back; M observed it.
        assert supernode.observed_from("echo", future.hash)

    def test_normal_node_does_not_echo(self, echo_network, wallet, factory):
        supernode = Supernode.join(echo_network)
        future = factory.future(wallet.fresh_account(), gas_price=gwei(2.0))
        supernode.send_transactions("b", [future])
        echo_network.run(2.0)
        assert not supernode.observed_from("b", future.hash)

    def test_echo_does_not_break_measurement(self, echo_network):
        """The paper fixed this by discarding echoed futures on M; our
        supernode's observation-based detection keys on txA's hash, so
        echoes are absorbed without special-casing."""
        prefill_mempools(echo_network, median_price=gwei(1.0))
        supernode = Supernode.join(echo_network)
        config = MeasurementConfig.for_policy(GETH.scaled(128))
        report = measure_one_link(echo_network, supernode, "echo", "b", config)
        assert report.connected
        supernode.clear_observations()
        echo_network.forget_known_transactions()
        # Echoed floods must not create phantom edges either.
        report = measure_one_link(echo_network, supernode, "b", "echo", config)
        assert report.connected

    def test_pending_txs_not_echoed(self, echo_network, wallet, factory):
        supernode = Supernode.join(echo_network)
        pending = factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0))
        supernode.send_transactions("echo", [pending])
        echo_network.run(2.0)
        # Pending transactions follow normal relay rules (never back to
        # the sender), so M sees nothing from the echo node itself.
        assert not supernode.observed_from("echo", pending.hash)
