"""Invalidation tests for the cached node-id tuples.

``Network.node_ids`` and ``measurable_node_ids()`` were O(N) list builds
per call — quadratic across a campaign's hot loops. Both are now cached
tuples; these tests pin the part that can rot: the caches must invalidate
on every mutation that changes their answer (add_node, supernode joins,
even direct ``supernode_ids`` mutation).
"""

from repro.eth.network import Network
from repro.eth.node import Node
from repro.eth.supernode import Supernode
from repro.netgen.ethereum import quick_network


def make_network(n=5, seed=2):
    network = Network(seed=seed)
    for i in range(n):
        network.create_node(f"n{i}")
    return network


def test_node_ids_cached_between_calls():
    network = make_network()
    first = network.node_ids
    assert first == tuple(f"n{i}" for i in range(5))
    assert network.node_ids is first  # cache hit: same tuple object


def test_add_node_invalidates_node_ids():
    network = make_network()
    before = network.node_ids
    network.create_node("late")
    after = network.node_ids
    assert after is not before
    assert after == before + ("late",)


def test_measurable_excludes_supernodes_and_invalidates_on_join():
    network = quick_network(n_nodes=12, seed=4)
    before = network.measurable_node_ids()
    assert network.measurable_node_ids() is before  # cache hit

    supernode = Supernode.join(network)
    after = network.measurable_node_ids()
    assert after is not before
    assert supernode.id not in after
    assert set(after) == set(before)  # same measurable population


def test_measurable_self_heals_on_direct_supernode_mutation():
    network = make_network()
    before = network.measurable_node_ids()
    # Not the supported path (Supernode.join is), but the length key must
    # keep the cache honest even under direct mutation.
    network.supernode_ids.add("n4")
    after = network.measurable_node_ids()
    assert "n4" not in after
    assert after == tuple(f"n{i}" for i in range(4))


def test_caches_consistent_after_interleaved_mutations():
    network = make_network()
    assert len(network.node_ids) == 5
    network.add_node(Node("sn", network.sim), supernode=True)
    assert "sn" in network.node_ids
    assert "sn" not in network.measurable_node_ids()
    network.create_node("n5")
    assert network.node_ids[-1] == "n5"
    assert "n5" in network.measurable_node_ids()
    # The tuples always agree with the live node table.
    assert set(network.node_ids) == set(network.nodes)
