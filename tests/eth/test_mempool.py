"""Tests for the parameterized mempool: admission, pending/future split,
replacement (R), future limit (U), eviction floor (P), capacity (L)."""

import pytest

from repro.eth.mempool import AddOutcome, Mempool
from repro.eth.policies import GETH, PARITY, MempoolPolicy
from repro.eth.transaction import Transaction, gwei


@pytest.fixture
def pool(small_policy):
    return Mempool(policy=small_policy)


def make_pending(pool, wallet, factory, count, price=gwei(1)):
    txs = []
    for _ in range(count):
        tx = factory.transfer(wallet.fresh_account(), gas_price=price)
        assert pool.add(tx).admitted
        txs.append(tx)
    return txs


class TestBasicAdmission:
    def test_pending_when_nonce_continues(self, pool, wallet, factory):
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        result = pool.add(tx)
        assert result.outcome is AddOutcome.ADMITTED_PENDING
        assert result.propagatable
        assert pool.is_pending(tx.hash)

    def test_future_when_nonce_gapped(self, pool, wallet, factory):
        account = wallet.fresh_account()
        tx = Transaction(sender=account.address, nonce=5, gas_price=gwei(1))
        result = pool.add(tx)
        assert result.outcome is AddOutcome.ADMITTED_FUTURE
        assert not result.propagatable
        assert pool.is_future(tx.hash)

    def test_duplicate_rejected(self, pool, wallet, factory):
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pool.add(tx)
        assert pool.add(tx).outcome is AddOutcome.REJECTED_KNOWN

    def test_stale_nonce_rejected(self, wallet, factory, small_policy):
        nonces = {"confirmed": 3}
        pool = Mempool(small_policy, confirmed_nonce=lambda s: nonces["confirmed"])
        account = wallet.fresh_account()
        tx = Transaction(sender=account.address, nonce=2, gas_price=gwei(1))
        assert pool.add(tx).outcome is AddOutcome.REJECTED_STALE_NONCE

    def test_contiguous_chain_all_pending(self, pool, wallet):
        account = wallet.fresh_account()
        for nonce in range(5):
            tx = Transaction(sender=account.address, nonce=nonce, gas_price=gwei(1))
            result = pool.add(tx)
            assert result.is_pending
        assert pool.pending_count == 5

    def test_gap_fill_promotes_futures(self, pool, wallet):
        account = wallet.fresh_account()
        later = Transaction(sender=account.address, nonce=1, gas_price=gwei(1))
        assert pool.add(later).outcome is AddOutcome.ADMITTED_FUTURE
        first = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        result = pool.add(first)
        assert result.outcome is AddOutcome.ADMITTED_PENDING
        assert [t.hash for t in result.promoted] == [later.hash]
        assert pool.is_pending(later.hash)

    def test_lookup_by_hash_and_sender(self, pool, wallet, factory):
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pool.add(tx)
        assert pool.get(tx.hash) is tx
        assert pool.sender_transaction(tx.sender, tx.nonce) is tx
        assert pool.get("0xmissing") is None


class TestReplacement:
    def test_sufficient_bump_replaces(self, pool, wallet, factory):
        original = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pool.add(original)
        challenger = factory.replacement(original, 0.10)
        result = pool.add(challenger)
        assert result.outcome is AddOutcome.REPLACED
        assert result.replaced.hash == original.hash
        assert original.hash not in pool
        assert challenger.hash in pool

    def test_insufficient_bump_rejected(self, pool, wallet, factory):
        original = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pool.add(original)
        challenger = factory.replacement(original, 0.05)
        result = pool.add(challenger)
        assert result.outcome is AddOutcome.REJECTED_UNDERPRICED_REPLACEMENT
        assert original.hash in pool

    def test_exact_threshold_replaces(self, pool, wallet, factory):
        original = factory.transfer(wallet.fresh_account(), gas_price=1000)
        pool.add(original)
        exact = Transaction(
            sender=original.sender, nonce=original.nonce, gas_price=1100
        )
        assert pool.add(exact).outcome is AddOutcome.REPLACED

    def test_replacement_of_future_transaction(self, pool, wallet):
        account = wallet.fresh_account()
        original = Transaction(sender=account.address, nonce=7, gas_price=1000)
        pool.add(original)
        challenger = Transaction(sender=account.address, nonce=7, gas_price=1100)
        result = pool.add(challenger)
        assert result.outcome is AddOutcome.REPLACED
        assert not result.is_pending

    def test_zero_bump_policy_allows_equal_price(self, wallet):
        """The Nethermind/Aleth flaw: R=0 lets an equal-priced transaction
        replace, enabling free re-propagation (Section 5.1)."""
        flawed = MempoolPolicy(
            name="flawed",
            replace_bump=0.0,
            future_limit_per_account=None,
            eviction_pending_floor=0,
            capacity=64,
        )
        pool = Mempool(flawed)
        account = wallet.fresh_account()
        original = Transaction(sender=account.address, nonce=0, gas_price=1000)
        pool.add(original)
        equal = Transaction(
            sender=account.address, nonce=0, gas_price=1000, value=1
        )
        assert pool.add(equal).outcome is AddOutcome.REPLACED


class TestFutureLimit:
    def test_u_limit_enforced_per_account(self, wallet, factory):
        policy = GETH.scaled(64).with_capacity(64)
        pool = Mempool(policy)
        limit = policy.future_limit_per_account
        account = wallet.fresh_account()
        admitted = 0
        for index in range(limit + 5):
            result = pool.add(factory.future(account, gas_price=gwei(2), index=index))
            if result.admitted:
                admitted += 1
            else:
                assert result.outcome is AddOutcome.REJECTED_FUTURE_LIMIT
        assert admitted == limit

    def test_unlimited_u(self, wallet, factory):
        policy = GETH.scaled(32)
        unlimited = MempoolPolicy(
            name="besu-ish",
            replace_bump=0.10,
            future_limit_per_account=None,
            eviction_pending_floor=0,
            capacity=policy.capacity,
        )
        pool = Mempool(unlimited)
        account = wallet.fresh_account()
        for index in range(policy.capacity):
            assert pool.add(
                factory.future(account, gas_price=gwei(2), index=index)
            ).admitted

    def test_u_counts_only_same_sender(self, wallet, factory, small_policy):
        pool = Mempool(small_policy)
        for _ in range(3):
            account = wallet.fresh_account()
            for index in range(2):
                assert pool.add(
                    factory.future(account, gas_price=gwei(2), index=index)
                ).admitted


class TestEviction:
    def test_future_evicts_lowest_priced_pending_when_full(
        self, wallet, factory, small_policy
    ):
        pool = Mempool(small_policy)
        txs = make_pending(pool, wallet, factory, small_policy.capacity - 1)
        cheap = factory.transfer(wallet.fresh_account(), gas_price=gwei(0.1))
        pool.add(cheap)
        assert pool.is_full
        probe = factory.future(wallet.fresh_account(), gas_price=gwei(2))
        result = pool.add(probe)
        assert result.admitted
        assert [t.hash for t in result.evicted] == [cheap.hash]
        assert txs[0].hash in pool  # higher-priced pending survives

    def test_future_cannot_evict_higher_priced_pending(
        self, wallet, factory, small_policy
    ):
        pool = Mempool(small_policy)
        make_pending(pool, wallet, factory, small_policy.capacity, price=gwei(5))
        probe = factory.future(wallet.fresh_account(), gas_price=gwei(2))
        assert pool.add(probe).outcome is AddOutcome.REJECTED_POOL_FULL

    def test_future_never_evicts_future(self, wallet, factory, small_policy):
        pool = Mempool(small_policy)
        per = small_policy.future_limit_per_account
        filled = 0
        while filled < small_policy.capacity:
            account = wallet.fresh_account()
            for index in range(min(per, small_policy.capacity - filled)):
                assert pool.add(
                    factory.future(account, gas_price=gwei(1), index=index)
                ).admitted
                filled += 1
        probe = factory.future(wallet.fresh_account(), gas_price=gwei(100))
        assert pool.add(probe).outcome is AddOutcome.REJECTED_POOL_FULL

    def test_pending_evicts_future_first_regardless_of_price(
        self, wallet, factory, small_policy
    ):
        """The rule that lets txB at (1-R/2)Y enter a pool full of
        (1+R)Y flood futures (Figure 2's Step 2)."""
        pool = Mempool(small_policy)
        make_pending(pool, wallet, factory, small_policy.capacity - 1, gwei(5))
        expensive_future = factory.future(wallet.fresh_account(), gas_price=gwei(10))
        pool.add(expensive_future)
        assert pool.is_full
        cheap_pending = factory.transfer(wallet.fresh_account(), gas_price=gwei(0.5))
        result = pool.add(cheap_pending)
        assert result.admitted
        assert [t.hash for t in result.evicted] == [expensive_future.hash]

    def test_pending_falls_back_to_price_rule_without_futures(
        self, wallet, factory, small_policy
    ):
        pool = Mempool(small_policy)
        make_pending(pool, wallet, factory, small_policy.capacity, gwei(5))
        too_cheap = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        assert pool.add(too_cheap).outcome is AddOutcome.REJECTED_POOL_FULL
        rich = factory.transfer(wallet.fresh_account(), gas_price=gwei(6))
        assert pool.add(rich).admitted

    def test_eviction_floor_p_blocks_future_eviction(self, wallet, factory):
        policy = PARITY.scaled(64)  # P scales to a small non-zero floor
        pool = Mempool(policy)
        floor = policy.eviction_pending_floor
        make_pending(pool, wallet, factory, floor)  # pending == P, not > P
        per = policy.future_limit_per_account
        filled = floor
        while filled < policy.capacity:
            account = wallet.fresh_account()
            for index in range(min(per, policy.capacity - filled)):
                assert pool.add(
                    factory.future(account, gas_price=gwei(2), index=index)
                ).admitted
                filled += 1
        probe = factory.future(wallet.fresh_account(), gas_price=gwei(100))
        assert pool.add(probe).outcome is AddOutcome.REJECTED_POOL_FULL

    def test_eviction_above_floor_succeeds(self, wallet, factory):
        policy = PARITY.scaled(64)
        pool = Mempool(policy)
        floor = policy.eviction_pending_floor
        make_pending(pool, wallet, factory, policy.capacity)  # all pending > P
        assert pool.pending_count > floor
        probe = factory.future(wallet.fresh_account(), gas_price=gwei(100))
        assert pool.add(probe).admitted


class TestBlockApplication:
    def test_included_transactions_removed(self, wallet, factory, small_policy):
        nonces = {}
        pool = Mempool(small_policy, confirmed_nonce=lambda s: nonces.get(s, 0))
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pool.add(tx)
        nonces[tx.sender] = tx.nonce + 1
        dropped = pool.apply_block([tx])
        assert [t.hash for t in dropped] == [tx.hash]
        assert tx.hash not in pool

    def test_stale_same_sender_transactions_dropped(
        self, wallet, factory, small_policy
    ):
        nonces = {}
        pool = Mempool(small_policy, confirmed_nonce=lambda s: nonces.get(s, 0))
        account = wallet.fresh_account()
        tx0 = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        rival = Transaction(sender=account.address, nonce=0, gas_price=gwei(2), value=5)
        pool.add(tx0)
        nonces[account.address] = 1
        dropped = pool.apply_block([rival])  # a competing tx was mined
        assert tx0.hash in {t.hash for t in dropped}

    def test_next_nonce_promotes_after_block(self, wallet, small_policy):
        nonces = {}
        pool = Mempool(small_policy, confirmed_nonce=lambda s: nonces.get(s, 0))
        account = wallet.fresh_account()
        tx0 = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        tx1 = Transaction(sender=account.address, nonce=1, gas_price=gwei(1))
        pool.add(tx0)
        pool.add(tx1)
        nonces[account.address] = 1
        pool.apply_block([tx0])
        assert pool.is_pending(tx1.hash)


class TestExpiry:
    def test_old_transactions_expire(self, wallet, factory, small_policy):
        clock = {"now": 0.0}
        pool = Mempool(small_policy, clock=lambda: clock["now"])
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pool.add(tx)
        clock["now"] = small_policy.expiry_seconds + 1
        dropped = pool.evict_expired(clock["now"])
        assert [t.hash for t in dropped] == [tx.hash]

    def test_fresh_transactions_survive(self, wallet, factory, small_policy):
        clock = {"now": 0.0}
        pool = Mempool(small_policy, clock=lambda: clock["now"])
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pool.add(tx)
        assert pool.evict_expired(100.0) == []
        assert tx.hash in pool


class TestQueries:
    def test_median_pending_price(self, wallet, small_policy):
        pool = Mempool(small_policy)
        for price in (100, 200, 300):
            account = wallet.fresh_account()
            pool.add(Transaction(sender=account.address, nonce=0, gas_price=price))
        assert pool.median_pending_price() == 200

    def test_median_of_empty_pool_is_none(self, small_policy):
        assert Mempool(small_policy).median_pending_price() is None

    def test_median_excludes_futures(self, wallet, factory, small_policy):
        pool = Mempool(small_policy)
        account = wallet.fresh_account()
        pool.add(Transaction(sender=account.address, nonce=0, gas_price=100))
        pool.add(factory.future(wallet.fresh_account(), gas_price=10**6))
        assert pool.median_pending_price() == 100

    def test_pending_by_price_desc_respects_nonce_order(self, wallet, small_policy):
        pool = Mempool(small_policy)
        account = wallet.fresh_account()
        low_first = Transaction(sender=account.address, nonce=0, gas_price=100)
        high_second = Transaction(sender=account.address, nonce=1, gas_price=900)
        pool.add(low_first)
        pool.add(high_second)
        ordered = pool.pending_by_price_desc()
        assert ordered.index(low_first) < ordered.index(high_second)

    def test_clear_empties_everything(self, wallet, factory, small_policy):
        pool = Mempool(small_policy)
        make_pending(pool, wallet, factory, 5)
        assert pool.clear() == 5
        assert len(pool) == 0
        pool.check_invariants()

    def test_stats_track_outcomes(self, wallet, factory, small_policy):
        pool = Mempool(small_policy)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        pool.add(tx)
        pool.add(tx)
        assert pool.stats["admitted_pending"] == 1
        assert pool.stats["rejected_known"] == 1
