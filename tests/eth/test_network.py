"""Tests for the network container: wiring, transport, ground truth."""

import pytest

from repro.errors import (
    LinkExistsError,
    NetworkError,
    NotConnectedError,
    UnknownNodeError,
)
from repro.eth.messages import Transactions
from repro.eth.network import Network, fully_connect
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei


class TestWiring:
    def test_connect_creates_bidirectional_peering(self, triangle_network):
        assert triangle_network.are_connected("n0", "n1")
        assert "n1" in triangle_network.node("n0").peer_ids
        assert "n0" in triangle_network.node("n1").peer_ids

    def test_duplicate_link_rejected(self, triangle_network):
        with pytest.raises(LinkExistsError):
            triangle_network.connect("n0", "n1")

    def test_self_link_rejected(self, triangle_network):
        with pytest.raises(NetworkError):
            triangle_network.connect("n0", "n0")

    def test_unknown_node_rejected(self, triangle_network):
        with pytest.raises(UnknownNodeError):
            triangle_network.connect("n0", "ghost")

    def test_duplicate_node_id_rejected(self, triangle_network):
        with pytest.raises(NetworkError):
            triangle_network.create_node("n0")

    def test_peer_limit_enforced_without_force(self):
        network = Network(seed=0)
        config = NodeConfig(policy=GETH.scaled(16), max_peers=1)
        for name in ("a", "b", "c"):
            network.create_node(name, config)
        network.connect("a", "b")
        with pytest.raises(NetworkError):
            network.connect("a", "c")
        network.connect("a", "c", force=True)  # supernode-style override
        assert network.node("a").degree == 2

    def test_disconnect(self, triangle_network):
        triangle_network.disconnect("n0", "n1")
        assert not triangle_network.are_connected("n0", "n1")
        with pytest.raises(NotConnectedError):
            triangle_network.disconnect("n0", "n1")

    def test_fully_connect_helper(self):
        network = Network(seed=0)
        for name in ("a", "b", "c", "d"):
            network.create_node(name)
        fully_connect(network, ["a", "b", "c", "d"])
        assert network.link_count == 6


class TestTransport:
    def test_send_requires_link(self, triangle_network, wallet, factory):
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        msg = Transactions(txs=(tx,))
        with pytest.raises(NotConnectedError):
            triangle_network.send("n0", "n0", msg)
        network = triangle_network
        network.disconnect("n0", "n2")
        with pytest.raises(NotConnectedError):
            network.send("n0", "n2", msg)

    def test_messages_arrive_after_latency(self, line_network, wallet, factory):
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        line_network.send("n0", "n1", Transactions(txs=(tx,)))
        assert tx.hash not in line_network.node("n1").mempool
        line_network.run(1.0)
        assert tx.hash in line_network.node("n1").mempool

    def test_message_counters(self, line_network, wallet, factory):
        # Wiring already produced two Status handshakes per link.
        assert line_network.messages_by_kind["Status"] == 6
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        line_network.send("n0", "n1", Transactions(txs=(tx,)))
        assert line_network.messages_by_kind["Transactions"] == 1

    def test_handshake_exchanges_client_versions(self, line_network):
        line_network.run(2.0)
        assert (
            line_network.node("n0").peer_versions["n1"]
            == line_network.node("n1").config.client_version
        )
        assert "n0" in line_network.node("n1").peer_versions


class TestGroundTruth:
    def test_graph_matches_links(self, triangle_network):
        graph = triangle_network.ground_truth_graph()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3

    def test_supernode_excluded_by_default(self, triangle_network):
        supernode = Supernode.join(triangle_network)
        graph = triangle_network.ground_truth_graph()
        assert supernode.id not in graph
        assert graph.number_of_edges() == 3
        included = triangle_network.ground_truth_graph(include_supernodes=True)
        assert supernode.id in included
        assert included.number_of_edges() == 6

    def test_ground_truth_edges_excludes_supernode_links(self, triangle_network):
        Supernode.join(triangle_network)
        edges = triangle_network.ground_truth_edges()
        assert len(edges) == 3
        assert all("supernode" not in "".join(e) for e in edges)

    def test_measurable_node_ids(self, triangle_network):
        Supernode.join(triangle_network)
        assert sorted(triangle_network.measurable_node_ids()) == ["n0", "n1", "n2"]


class TestDeterminism:
    def test_same_seed_same_message_timeline(self, wallet, factory):
        def run_once():
            network = Network(seed=33)
            config = NodeConfig(policy=GETH.scaled(32))
            for i in range(5):
                network.create_node(f"n{i}", config)
            for i in range(4):
                network.connect(f"n{i}", f"n{i + 1}")
            from repro.eth.account import Wallet
            from repro.eth.transaction import TransactionFactory

            tx = TransactionFactory().transfer(
                Wallet("det").fresh_account(), gas_price=gwei(1)
            )
            network.node("n0").submit_transaction(tx)
            network.run(10.0)
            return network.messages_sent, network.sim.executed_events

        assert run_once() == run_once()
