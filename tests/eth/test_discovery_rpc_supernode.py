"""Tests for discovery tables, the RPC facade and the supernode."""

import random

import pytest

from repro.errors import ReproError
from repro.eth.discovery import (
    BUCKET_COUNT,
    RoutingTable,
    build_routing_tables,
    bucket_index,
    kademlia_id,
    xor_distance,
)
from repro.eth.messages import NewPooledTransactionHashes
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.rpc import RpcServer, RpcUnavailableError
from repro.eth.supernode import Supernode
from repro.eth.transaction import Transaction, gwei


class TestKademlia:
    def test_id_is_stable(self):
        assert kademlia_id("node-1") == kademlia_id("node-1")

    def test_xor_distance_symmetric_and_zero_on_self(self):
        assert xor_distance("a", "b") == xor_distance("b", "a")
        assert xor_distance("a", "a") == 0

    def test_bucket_index_in_range(self):
        for i in range(50):
            index = bucket_index("owner", f"peer-{i}")
            assert 0 <= index < BUCKET_COUNT


class TestRoutingTable:
    def test_never_contains_owner(self):
        table = RoutingTable(owner_id="me", capacity=16)
        assert not table.add("me")

    def test_no_duplicates(self):
        table = RoutingTable(owner_id="me", capacity=16)
        assert table.add("peer")
        assert not table.add("peer")
        assert len(table) == 1

    def test_bucket_capacity_limits_insertion(self):
        table = RoutingTable(owner_id="me", capacity=BUCKET_COUNT)  # 1 per bucket
        inserted = table.fill_from([f"n{i}" for i in range(200)], random.Random(1))
        assert inserted <= BUCKET_COUNT
        for bucket in table.buckets.values():
            assert len(bucket) <= table.bucket_capacity

    def test_fill_from_reaches_target(self):
        table = RoutingTable(owner_id="me", capacity=64)
        population = [f"n{i}" for i in range(500)]
        table.fill_from(population, random.Random(2))
        assert len(table) >= 32  # most buckets fillable from 500 candidates

    def test_closest_sorts_by_xor(self):
        table = RoutingTable(owner_id="me", capacity=64)
        table.fill_from([f"n{i}" for i in range(100)], random.Random(3))
        closest = table.closest("target", count=5)
        distances = [xor_distance(nid, "target") for nid in closest]
        assert distances == sorted(distances)

    def test_build_tables_for_population(self):
        ids = [f"n{i}" for i in range(30)]
        tables = build_routing_tables(ids, random.Random(4), capacity=16)
        assert set(tables) == set(ids)
        for owner, table in tables.items():
            assert owner not in table.entries()


@pytest.fixture
def rpc_network(wallet, factory):
    network = Network(seed=6)
    config = NodeConfig(policy=GETH.scaled(64), client_version="Geth/v1.9.99-test")
    network.create_node("a", config)
    network.create_node("b", config)
    network.connect("a", "b")
    tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
    network.node("a").submit_transaction(tx)
    return network, tx


class TestRpc:
    def test_client_version(self, rpc_network):
        network, _ = rpc_network
        rpc = RpcServer(network.node("a"))
        assert rpc.call("web3_clientVersion") == "Geth/v1.9.99-test"

    def test_get_transaction_by_hash(self, rpc_network):
        network, tx = rpc_network
        rpc = RpcServer(network.node("a"))
        found = rpc.call("eth_getTransactionByHash", tx.hash)
        assert found["hash"] == tx.hash
        assert found["pending"] is True
        assert rpc.call("eth_getTransactionByHash", "0xmissing") is None

    def test_txpool_status_and_content(self, rpc_network, wallet, factory):
        network, tx = rpc_network
        node = network.node("a")
        node.submit_transaction(factory.future(wallet.fresh_account(), gwei(2)))
        rpc = RpcServer(node)
        status = rpc.call("txpool_status")
        assert status == {"pending": 1, "queued": 1}
        content = rpc.call("txpool_content")
        assert tx.hash in content["pending"][tx.sender]

    def test_admin_peers_is_ground_truth(self, rpc_network):
        network, _ = rpc_network
        assert RpcServer(network.node("a")).call("admin_peers") == ["b"]

    def test_send_raw_transaction(self, rpc_network, wallet, factory):
        network, _ = rpc_network
        rpc = RpcServer(network.node("a"))
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        assert rpc.call("eth_sendRawTransaction", tx) == tx.hash

    def test_send_raw_rejection_raises(self, rpc_network, wallet, factory):
        network, existing = rpc_network
        rpc = RpcServer(network.node("a"))
        weak = Transaction(
            sender=existing.sender, nonce=existing.nonce, gas_price=existing.gas_price
        )
        weak_bump = Transaction(
            sender=existing.sender,
            nonce=existing.nonce,
            gas_price=existing.gas_price + 1,
        )
        with pytest.raises(ReproError):
            rpc.call("eth_sendRawTransaction", weak_bump)

    def test_disabled_rpc_raises(self):
        network = Network(seed=1)
        node = network.create_node(
            "quiet", NodeConfig(policy=GETH.scaled(16), responds_to_rpc=False)
        )
        with pytest.raises(RpcUnavailableError):
            RpcServer(node).call("web3_clientVersion")

    def test_unknown_method_raises(self, rpc_network):
        from repro.errors import RpcMethodNotFoundError

        network, _ = rpc_network
        with pytest.raises(RpcMethodNotFoundError) as excinfo:
            RpcServer(network.node("a")).call("eth_mine_me_some_coins")
        assert excinfo.value.method == "eth_mine_me_some_coins"
        # Regression: the typed error still satisfies legacy KeyError
        # handlers, and str() gives the message, not KeyError's repr.
        assert isinstance(excinfo.value, KeyError)
        assert "eth_mine_me_some_coins" in str(excinfo.value)


class TestSupernode:
    def test_joins_everyone_without_peer_limit(self, triangle_network):
        supernode = Supernode.join(triangle_network)
        assert supernode.degree == 3
        assert all(
            triangle_network.are_connected(supernode.id, n)
            for n in ("n0", "n1", "n2")
        )

    def test_records_push_observations(self, triangle_network, wallet, factory):
        supernode = Supernode.join(triangle_network)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        triangle_network.node("n0").submit_transaction(tx)
        triangle_network.run(10.0)
        assert supernode.observed_from("n0", tx.hash)
        assert supernode.observers_of(tx.hash) >= {"n0"}

    def test_records_announce_observations_despite_hold(
        self, triangle_network, wallet, factory
    ):
        supernode = Supernode.join(triangle_network)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        supernode.handle_message(
            "n0", NewPooledTransactionHashes(hashes=(tx.hash,))
        )
        supernode.handle_message(
            "n1", NewPooledTransactionHashes(hashes=(tx.hash,))
        )
        assert supernode.observed_from("n0", tx.hash)
        assert supernode.observed_from("n1", tx.hash)  # hold bypassed

    def test_never_relays(self, wallet, factory):
        network = Network(seed=8)
        config = NodeConfig(policy=GETH.scaled(32))
        network.create_node("a", config)
        network.create_node("b", config)
        # a and b are NOT connected; the supernode bridges them physically.
        supernode = Supernode.join(network)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        supernode.send_transactions("a", [tx])
        network.run(10.0)
        assert tx.hash in network.node("a").mempool
        assert tx.hash not in network.node("b").mempool

    def test_clear_observations(self, triangle_network, wallet, factory):
        supernode = Supernode.join(triangle_network)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        triangle_network.node("n0").submit_transaction(tx)
        triangle_network.run(5.0)
        supernode.clear_observations()
        assert not supernode.observed_from("n0", tx.hash)
        assert supernode.observations == []

    def test_first_observation_time_is_monotone_in_distance(
        self, line_network, wallet, factory
    ):
        supernode = Supernode.join(line_network)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        # Local submission: n0 then gossips to M (a node never propagates a
        # transaction back to the peer that sent it, so injecting through M
        # would leave n0 unobservable).
        line_network.node("n0").submit_transaction(tx)
        line_network.run(10.0)
        t0 = supernode.first_observation_time("n0", tx.hash)
        t3 = supernode.first_observation_time("n3", tx.hash)
        assert t0 is not None and t3 is not None
        assert t0 < t3  # farther along the line -> later possession

    def test_find_node_crawling(self, triangle_network):
        supernode = Supernode.join(triangle_network)
        triangle_network.node("n0").routing_table = ["n1", "n2"]
        supernode.send_find_node("n0")
        triangle_network.run(2.0)
        assert supernode.neighbor_responses["n0"] == ("n1", "n2")

    def test_targets_subset_join(self, triangle_network):
        supernode = Supernode.join(
            triangle_network, node_id="partial-M", targets=["n0", "n1"]
        )
        assert supernode.degree == 2
        assert not triangle_network.are_connected("partial-M", "n2")
