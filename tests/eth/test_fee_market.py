"""Tests for the live fee market: dynamic floor, surge quote, base/tip
split, mempool admission wiring, and snapshot round-trips."""

import pytest

from repro.errors import MempoolError
from repro.eth.fee_market import FeeMarket, FeeMarketConfig, min_measurement_y
from repro.eth.mempool import AddOutcome, Mempool
from repro.eth.policies import GETH
from repro.eth.transaction import TransactionFactory, gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_floor": -1},
            {"floor_percentile": 1.0},
            {"floor_percentile": -0.1},
            {"admission_discount": 0.0},
            {"admission_discount": 1.5},
            {"target_occupancy": 0.0},
            {"target_occupancy": 1.0},
            {"max_surge": 0.5},
            {"update_interval": 0.0},
            {"history_limit": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(MempoolError):
            FeeMarketConfig(**kwargs)

    def test_defaults_valid(self):
        config = FeeMarketConfig()
        assert config.min_floor > 0
        assert config.max_surge >= 1.0


class TestMinMeasurementY:
    @pytest.mark.parametrize("floor", [1, 17, gwei(0.3), gwei(5.0) + 3])
    @pytest.mark.parametrize("bump", [0.1, 0.15, 0.25])
    def test_cheapest_probe_clears_floor(self, floor, bump):
        y = min_measurement_y(floor, bump)
        # txB under the config builders' integer pricing must be admissible,
        # and y must be minimal for that property.
        assert int(y * (1.0 - bump / 2.0)) >= floor
        assert int((y - 1) * (1.0 - bump / 2.0)) < floor

    def test_degenerate_bump_rejected(self):
        with pytest.raises(MempoolError):
            min_measurement_y(gwei(1.0), 2.0)


class TestAdmissionFloor:
    def _pool_with_market(self, floor):
        market = FeeMarket(FeeMarketConfig(min_floor=floor))
        pool = Mempool(policy=GETH.scaled(64))
        pool.fee_market = market
        return pool, market

    def test_below_floor_rejected(self, wallet):
        pool, _ = self._pool_with_market(gwei(1.0))
        factory = TransactionFactory()
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(0.5))
        result = pool.add(tx)
        assert result.outcome is AddOutcome.REJECTED_FEE_FLOOR
        assert not result.admitted
        assert pool.stats["rejected_fee_floor"] == 1
        assert len(pool) == 0

    def test_at_floor_admitted(self, wallet):
        pool, _ = self._pool_with_market(gwei(1.0))
        factory = TransactionFactory()
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1.0))
        assert pool.add(tx).admitted

    def test_no_market_means_seed_path(self, wallet):
        pool = Mempool(policy=GETH.scaled(64))
        factory = TransactionFactory()
        tx = factory.transfer(wallet.fresh_account(), gas_price=1)
        assert pool.add(tx).admitted
        assert pool.stats["rejected_fee_floor"] == 0


class TestDynamicFloorAndSurge:
    def _market_network(self, n=10, seed=11, median=gwei(1.0)):
        network = quick_network(n, seed=seed)
        network.install_fee_market()
        prefill_mempools(network, median_price=median)
        return network

    def test_floor_tracks_watermark(self):
        network = self._market_network()
        market = network.fee_market
        # The floor-aware prefill already queried the (then-empty) market;
        # step past the update interval so the query below recomputes.
        floor = market.floor_for(
            network.sim.now + market.config.update_interval
        )
        # Full pools around gwei(1): the discounted low-percentile
        # watermark sits well above the configured minimum.
        assert floor > market.config.min_floor
        assert market.occupancy > market.config.target_occupancy

    def test_surge_prices_the_quote_not_the_floor(self):
        network = self._market_network()
        market = network.fee_market
        now = network.sim.now + market.config.update_interval
        floor = market.floor_for(now)
        quote = market.quote_for(now)
        assert market.surge == pytest.approx(market.config.max_surge)
        assert quote == int(floor * market.surge)
        assert quote > floor

    def test_no_ratchet_across_refills(self):
        """Refilling at the same ambient distribution must not drive the
        floor unboundedly upward (the surged-admission feedback loop)."""
        network = self._market_network()
        market = network.fee_market
        floors = []
        for _ in range(6):
            network.sim.run(until=network.sim.now + 5.0)
            for node_id in network.measurable_node_ids():
                network.node(node_id).mempool.clear()
            prefill_mempools(network, median_price=gwei(1.0))
            floors.append(
                market.floor_for(
                    network.sim.now + market.config.update_interval
                )
            )
        # Bounded: every steady-state floor stays in the ambient band.
        assert max(floors) < 2 * gwei(1.0)

    def test_update_rate_limited(self):
        network = self._market_network()
        market = network.fee_market
        now = network.sim.now
        market.floor_for(now)
        before = market.updates
        market.floor_for(now)
        market.floor_for(now + market.config.update_interval / 2)
        assert market.updates == before
        market.floor_for(now + market.config.update_interval)
        assert market.updates == before + 1

    def test_empty_pools_fall_back_to_min_floor(self):
        network = quick_network(6, seed=3)
        network.install_fee_market()
        for node_id in network.node_ids:
            network.node(node_id).mempool.clear()
        market = network.fee_market
        assert market.floor_for(network.sim.now) == market.config.min_floor
        assert market.surge == 1.0

    def test_history_bounded_and_trajectory_filtered(self):
        network = quick_network(6, seed=3)
        market = FeeMarket(FeeMarketConfig(history_limit=5, update_interval=1.0))
        network.install_fee_market(market)
        for step in range(12):
            market.floor_for(float(step))
        assert len(market.history) == 5
        window = market.floor_trajectory(9.0, 10.0)
        assert [entry[0] for entry in window] == [9.0, 10.0]

    def test_determinism(self):
        def trajectory():
            network = self._market_network(n=8, seed=21)
            market = network.fee_market
            for step in range(5):
                market.floor_for(network.sim.now + float(step))
            return market.history

        assert trajectory() == trajectory()


class TestSplit:
    def test_base_plus_tip(self):
        network = quick_network(4, seed=1)
        network.install_fee_market()
        market = network.fee_market
        base_fee = network.chain.base_fee
        price = base_fee + gwei(2.0)
        base, tip = market.split(price)
        assert base == base_fee
        assert tip == gwei(2.0)
        assert base + tip == price

    def test_price_below_base_fee_has_no_tip(self):
        network = quick_network(4, seed=1)
        network.install_fee_market()
        market = network.fee_market
        if network.chain.base_fee == 0:
            pytest.skip("chain runs without a base fee")
        base, tip = market.split(network.chain.base_fee - 1)
        assert tip == 0
        assert base == network.chain.base_fee - 1


class TestNetworkWiring:
    def test_attached_to_every_pool_except_supernodes(self):
        network = quick_network(8, seed=9)
        from repro.eth.supernode import Supernode

        supernode = Supernode.join(network)
        network.install_fee_market()
        for node_id in network.node_ids:
            node = network.node(node_id)
            if node_id in network.supernode_ids:
                assert node.mempool.fee_market is None
            else:
                assert node.mempool.fee_market is network.fee_market
        assert supernode.mempool.fee_market is None

    def test_clear_detaches(self):
        network = quick_network(6, seed=9)
        network.install_fee_market()
        network.clear_fee_market()
        assert network.fee_market is None
        assert all(
            network.node(nid).mempool.fee_market is None
            for nid in network.node_ids
        )

    def test_snapshot_round_trip(self):
        network = quick_network(8, seed=13)
        network.install_fee_market()
        prefill_mempools(network, median_price=gwei(1.0))
        network.settle()
        market = network.fee_market
        market.floor_for(network.sim.now + market.config.update_interval)
        captured = network.snapshot()
        state = (
            market.floor,
            market.quote,
            market.surge,
            market.updates,
            list(market.history),
        )
        # Disturb the market, then restore.
        for node_id in network.measurable_node_ids():
            network.node(node_id).mempool.clear()
        market.floor_for(network.sim.now + 100.0)
        assert market.floor != state[0]
        network.restore(captured)
        assert (
            market.floor,
            market.quote,
            market.surge,
            market.updates,
            list(market.history),
        ) == state
