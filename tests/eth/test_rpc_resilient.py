"""The resilient measurement plane: endpoint faults and the hardened client."""

import pytest

from repro.errors import (
    MeasurementError,
    RpcConnectionError,
    RpcError,
    RpcExhaustedError,
    RpcMethodNotFoundError,
    RpcRateLimitedError,
    RpcTimeoutError,
    RpcTransientError,
    RpcUnavailableError,
)
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.rpc import (
    HARDENED_POLICY,
    RAW_POLICY,
    SNAPSHOT_FAILED,
    SNAPSHOT_OK,
    SNAPSHOT_TRUNCATED,
    ResilientRpcClient,
    RpcClientPolicy,
    RpcEndpoint,
    RpcServer,
    rpc_faults_active,
    rpc_tx_in_pool,
)
from repro.eth.transaction import TransactionFactory, gwei
from repro.sim.faults import FaultPlan, RpcFaultPlan


def pair_network(seed=11, rpc_plan=None):
    network = Network(seed=seed)
    config = NodeConfig(policy=GETH.scaled(64))
    network.create_node("a", config)
    network.create_node("b", config)
    network.connect("a", "b")
    network.run(1.0)
    if rpc_plan is not None:
        network.install_faults(FaultPlan(rpc=rpc_plan))
    return network


# Shared wallet: every submit_transfer gets a distinct sender account.
_WALLET = Wallet("rpc-test")


def submit_transfer(network, node_id):
    tx = TransactionFactory().transfer(_WALLET.fresh_account(), gas_price=gwei(2.0))
    network.node(node_id).submit_transaction(tx)
    return tx


class TestErrorTaxonomy:
    def test_method_not_found_is_typed_and_keyerror(self):
        network = pair_network()
        with pytest.raises(RpcMethodNotFoundError) as excinfo:
            RpcServer(network.node("a")).call("eth_no_such_method")
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, RpcError)
        assert excinfo.value.method == "eth_no_such_method"
        assert "eth_no_such_method" in str(excinfo.value)

    def test_unavailable_is_rpc_error(self):
        network = Network(seed=3)
        network.create_node(
            "quiet", NodeConfig(policy=GETH.scaled(64), responds_to_rpc=False)
        )
        with pytest.raises(RpcUnavailableError) as excinfo:
            RpcServer(network.node("quiet")).call("web3_clientVersion")
        assert isinstance(excinfo.value, RpcError)

    def test_retryable_flags(self):
        assert RpcTimeoutError("n", "m", 1.0).retryable
        assert RpcTransientError("boom").retryable
        assert RpcConnectionError("flap").retryable
        assert not RpcUnavailableError("off").retryable
        assert not RpcMethodNotFoundError("m").retryable


class TestPassthrough:
    """With no RPC fault plan the new plumbing must be invisible."""

    def test_endpoint_is_pure_passthrough(self):
        network = pair_network()
        tx = submit_transfer(network, "a")
        endpoint = RpcEndpoint(network, "a")
        before = network.sim.now
        assert endpoint.call("eth_getTransactionByHash", tx.hash) is not None
        assert endpoint.call("txpool_status")["pending"] == 1
        assert network.sim.now == before
        assert not rpc_faults_active(network)

    def test_client_fast_path_no_time_no_counters(self):
        network = pair_network()
        tx = submit_transfer(network, "a")
        client = network.rpc_client()
        before = network.sim.now
        assert client.tx_in_pool("a", tx.hash) is True
        assert client.tx_in_pool("a", "0xmissing") is False
        assert client.peer_count("a") == 1
        assert network.sim.now == before
        assert client.calls_total == 0  # fast path: no call accounting

    def test_rpc_tx_in_pool_matches_direct_membership(self):
        network = pair_network()
        tx = submit_transfer(network, "a")
        assert rpc_tx_in_pool(network, "a", tx.hash) is True
        assert rpc_tx_in_pool(network, "b", tx.hash) is (
            tx.hash in network.node("b").mempool
        )

    def test_wire_only_fault_plan_keeps_fast_path(self):
        network = pair_network()
        network.install_faults(FaultPlan(loss_rate=0.5))
        assert not rpc_faults_active(network)
        tx = submit_transfer(network, "a")
        assert rpc_tx_in_pool(network, "a", tx.hash) is True


class TestEndpointFaults:
    def test_transient_error(self):
        network = pair_network(rpc_plan=RpcFaultPlan(error_rate=1.0))
        with pytest.raises(RpcTransientError):
            RpcEndpoint(network, "a").call("txpool_status")
        assert network.faults.rpc.transient_errors == 1

    def test_timeout(self):
        network = pair_network(rpc_plan=RpcFaultPlan(timeout_rate=1.0))
        with pytest.raises(RpcTimeoutError) as excinfo:
            RpcEndpoint(network, "a").call("txpool_status", deadline=3.0)
        assert excinfo.value.deadline == 3.0
        assert network.faults.rpc.timeouts == 1

    def test_rate_limit_carries_retry_after(self):
        plan = RpcFaultPlan(rate_limit_per_second=1.0, rate_limit_burst=2)
        network = pair_network(rpc_plan=plan)
        endpoint = RpcEndpoint(network, "a")
        endpoint.call("web3_clientVersion")
        endpoint.call("web3_clientVersion")
        with pytest.raises(RpcRateLimitedError) as excinfo:
            endpoint.call("web3_clientVersion")
        assert excinfo.value.retry_after > 0
        # The bucket refills with simulated time.
        network.run(2.0)
        assert endpoint.call("web3_clientVersion")

    def test_flap_downs_endpoint_then_recovers(self):
        # A plan that is enabled but never fires on its own; the flap is
        # staged by hand so the test controls the downtime window.
        network = pair_network(
            rpc_plan=RpcFaultPlan(rate_limit_per_second=1000.0)
        )
        state = network.faults.rpc
        state._down_until["a"] = network.sim.now + 5.0
        endpoint = RpcEndpoint(network, "a")
        with pytest.raises(RpcConnectionError):
            endpoint.call("web3_clientVersion")
        network.run(6.0)
        assert endpoint.call("web3_clientVersion")

    def test_unavailable_beats_fault_draws(self):
        network = Network(seed=5)
        network.create_node(
            "quiet", NodeConfig(policy=GETH.scaled(64), responds_to_rpc=False)
        )
        network.install_faults(FaultPlan(rpc=RpcFaultPlan(timeout_rate=1.0)))
        with pytest.raises(RpcUnavailableError):
            RpcEndpoint(network, "quiet").call("web3_clientVersion")
        assert network.faults.rpc.timeouts == 0  # no draw burned

    def test_truncated_content_keeps_full_status(self):
        plan = RpcFaultPlan(truncate_rate=1.0, truncate_keep_fraction=0.5)
        network = pair_network(rpc_plan=plan)
        for _ in range(4):
            submit_transfer(network, "a")
        endpoint = RpcEndpoint(network, "a")
        status = endpoint.call("txpool_status")
        content = endpoint.call("txpool_content")
        dumped = sum(len(v) for v in content["pending"].values())
        assert status["pending"] == 4
        assert dumped < status["pending"]  # the client's detection signal
        assert network.faults.rpc.truncated >= 1

    def test_stale_bundle_serves_lagged_copy(self):
        plan = RpcFaultPlan(stale_rate=1.0, stale_lag=10.0)
        network = pair_network(rpc_plan=plan)
        endpoint = RpcEndpoint(network, "a")
        assert endpoint.call("txpool_status")["pending"] == 0  # seeds the cache
        submit_transfer(network, "a")
        network.run(1.0)  # cache now strictly older than live state
        assert endpoint.call("txpool_status")["pending"] == 0  # lagged view
        assert network.faults.rpc.stale_served >= 1


class TestResilientClient:
    def test_policy_validation(self):
        with pytest.raises(MeasurementError):
            RpcClientPolicy(max_attempts=0)
        with pytest.raises(MeasurementError):
            RpcClientPolicy(jitter_frac=2.0)
        with pytest.raises(MeasurementError):
            RpcClientPolicy(health_alpha=0.0)

    def test_retries_recover_from_transient_errors(self):
        # error_rate high enough to fail sometimes, low enough that four
        # attempts almost surely land at least one success.
        network = pair_network(rpc_plan=RpcFaultPlan(error_rate=0.5))
        client = network.rpc_client()
        results = [client.call("a", "web3_clientVersion") for _ in range(10)]
        assert all(results)
        assert client.retries_total > 0
        assert client.attempts_total > client.calls_total

    def test_exhaustion_raises_typed_error(self):
        network = pair_network(rpc_plan=RpcFaultPlan(error_rate=1.0))
        client = ResilientRpcClient(
            network, RpcClientPolicy(max_attempts=2, breaker_threshold=100)
        )
        with pytest.raises(RpcExhaustedError) as excinfo:
            client.call("a", "web3_clientVersion")
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, RpcTransientError)

    def test_timeouts_burn_simulated_time_hedged_reads_burn_less(self):
        plan = RpcFaultPlan(timeout_rate=1.0)
        policy = RpcClientPolicy(
            max_attempts=2, deadline=2.0, hedge_delay=0.5, breaker_threshold=100
        )
        network = pair_network(rpc_plan=plan)
        client = ResilientRpcClient(network, policy)
        start = network.sim.now
        with pytest.raises(RpcExhaustedError):
            client.call("a", "admin_nodeInfo")  # not a hedge method
        unhedged_cost = network.sim.now - start
        start = network.sim.now
        with pytest.raises(RpcExhaustedError):
            client.call("a", "txpool_status")  # hedged snapshot read
        hedged_cost = network.sim.now - start
        assert unhedged_cost > hedged_cost
        assert client.hedges_total > 0

    def test_breaker_opens_and_rejects(self):
        network = pair_network(rpc_plan=RpcFaultPlan(error_rate=1.0))
        policy = RpcClientPolicy(
            max_attempts=1, breaker_threshold=3, breaker_cooldown=60.0
        )
        client = ResilientRpcClient(network, policy)
        for _ in range(3):
            with pytest.raises(RpcExhaustedError):
                client.call("a", "web3_clientVersion")
        with pytest.raises(RpcExhaustedError):
            client.call("a", "web3_clientVersion")
        assert client.breaker_rejections_total == 1
        assert "a" in client.unhealthy_endpoints()

    def test_rate_limit_compliance_waits_instead_of_hammering(self):
        plan = RpcFaultPlan(rate_limit_per_second=1.0, rate_limit_burst=1)
        network = pair_network(rpc_plan=plan)
        client = network.rpc_client()
        start = network.sim.now
        for _ in range(3):
            assert client.call("a", "web3_clientVersion")
        assert network.sim.now > start  # waited the retry_after horizons
        assert client.rate_limited_total > 0
        assert client.breaker("a").state == "closed"  # throttle != sickness

    def test_tx_in_pool_unknown_is_none_not_false(self):
        network = pair_network(rpc_plan=RpcFaultPlan(error_rate=1.0))
        tx = submit_transfer(network, "a")
        hardened = ResilientRpcClient(
            network, RpcClientPolicy(max_attempts=1, breaker_threshold=100)
        )
        assert hardened.tx_in_pool("a", tx.hash) is None
        assert hardened.degraded_lookups_total == 1

    def test_raw_policy_reads_failure_as_negative(self):
        network = pair_network(rpc_plan=RpcFaultPlan(error_rate=1.0))
        tx = submit_transfer(network, "a")
        raw = ResilientRpcClient(network, RAW_POLICY)
        assert raw.tx_in_pool("a", tx.hash) is False  # the silent false negative

    def test_no_rpc_node_falls_back_to_direct_view(self):
        network = Network(seed=6)
        config = NodeConfig(policy=GETH.scaled(64))
        network.create_node("a", config)
        network.create_node(
            "quiet", NodeConfig(policy=GETH.scaled(64), responds_to_rpc=False)
        )
        network.connect("a", "quiet")
        network.install_faults(FaultPlan(rpc=RpcFaultPlan(timeout_rate=1.0)))
        tx = submit_transfer(network, "quiet")
        client = network.rpc_client()
        assert client.tx_in_pool("quiet", tx.hash) is True

    def test_peer_count_none_when_plane_down(self):
        network = pair_network(rpc_plan=RpcFaultPlan(error_rate=1.0))
        client = ResilientRpcClient(
            network, RpcClientPolicy(max_attempts=1, breaker_threshold=100)
        )
        assert client.peer_count("a") is None

    def test_same_seed_reruns_are_bit_identical(self):
        def trace(seed):
            network = pair_network(
                seed=seed, rpc_plan=RpcFaultPlan.uniform(0.3)
            )
            client = network.rpc_client()
            out = []
            for _ in range(8):
                try:
                    out.append(bool(client.call("a", "web3_clientVersion")))
                except RpcError as exc:
                    out.append(type(exc).__name__)
            return out, client.counters(), network.sim.now

        assert trace(21) == trace(21)
        assert trace(21) != trace(22)  # the faults actually depend on the seed


class TestSnapshotValidation:
    def test_ok_snapshot(self):
        network = pair_network(rpc_plan=RpcFaultPlan(error_rate=0.0))
        submit_transfer(network, "a")
        snapshot = network.rpc_client().pool_snapshot("a")
        assert snapshot.verdict == SNAPSHOT_OK
        assert snapshot.pending_count == 1

    def test_truncated_snapshot_detected(self):
        plan = RpcFaultPlan(truncate_rate=1.0, truncate_keep_fraction=0.5)
        network = pair_network(rpc_plan=plan)
        for _ in range(4):
            submit_transfer(network, "a")
        snapshot = network.rpc_client().pool_snapshot("a")
        assert snapshot.verdict == SNAPSHOT_TRUNCATED
        assert snapshot.content_pending_count() < snapshot.pending_count

    def test_failed_snapshot_when_plane_dead(self):
        network = pair_network(rpc_plan=RpcFaultPlan(error_rate=1.0))
        client = ResilientRpcClient(
            network, RpcClientPolicy(max_attempts=1, breaker_threshold=100)
        )
        snapshot = client.pool_snapshot("a")
        assert snapshot.verdict == SNAPSHOT_FAILED
        assert not snapshot.ok

    def test_raw_policy_swallows_truncation(self):
        plan = RpcFaultPlan(truncate_rate=1.0, truncate_keep_fraction=0.5)
        network = pair_network(rpc_plan=plan)
        for _ in range(4):
            submit_transfer(network, "a")
        raw = ResilientRpcClient(network, RAW_POLICY)
        snapshot = raw.pool_snapshot("a")
        assert snapshot.verdict == SNAPSHOT_OK  # no validation: trusts the lie


class TestNetworkAccessor:
    def test_client_is_cached_and_replaceable(self):
        network = pair_network()
        first = network.rpc_client()
        assert network.rpc_client() is first
        raw = network.rpc_client(RAW_POLICY)
        assert raw is not first
        assert network.rpc_client() is raw
        assert raw.policy is RAW_POLICY
        assert first.policy is HARDENED_POLICY
