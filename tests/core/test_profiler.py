"""Tests for black-box client profiling (Section 5.1, Table 3).

The profiler must recover each policy's R/U/P/L purely from ``add``
outcomes; the scaled presets keep the tests fast while the full-scale
Table 3 values are exercised by the benchmark.
"""

import pytest

from repro.core.profiler import (
    measure_capacity,
    measure_eviction_floor,
    measure_future_limit,
    measure_replace_bump,
    profile_client,
    profile_table,
)
from repro.eth.policies import ALETH, BESU, GETH, NETHERMIND, PARITY


GETH_S = GETH.scaled(256)
PARITY_S = PARITY.scaled(409)
NETHERMIND_S = NETHERMIND.scaled(128)
BESU_S = BESU.scaled(204)
ALETH_S = ALETH.scaled(128)


class TestIndividualProbes:
    def test_capacity_recovered(self):
        assert measure_capacity(GETH_S) == GETH_S.capacity
        assert measure_capacity(PARITY_S) == PARITY_S.capacity

    def test_replace_bump_recovered(self):
        assert measure_replace_bump(GETH_S) == pytest.approx(0.10, abs=0.005)
        assert measure_replace_bump(PARITY_S) == pytest.approx(0.125, abs=0.005)

    def test_zero_bump_detected(self):
        assert measure_replace_bump(ALETH_S) == 0.0

    def test_future_limit_recovered(self):
        assert (
            measure_future_limit(GETH_S, GETH_S.capacity)
            == GETH_S.future_limit_per_account
        )

    def test_unlimited_future_limit_detected(self):
        assert measure_future_limit(BESU_S, BESU_S.capacity) is None

    def test_eviction_floor_zero_for_geth(self):
        assert measure_eviction_floor(GETH_S, GETH_S.capacity) == 0

    def test_eviction_floor_nonzero_for_parity(self):
        floor = measure_eviction_floor(PARITY_S, PARITY_S.capacity)
        assert floor == PARITY_S.eviction_pending_floor


class TestFullProfiles:
    @pytest.mark.parametrize(
        "policy",
        [GETH_S, PARITY_S, NETHERMIND_S, BESU_S, ALETH_S],
        ids=lambda p: p.name,
    )
    def test_profile_matches_policy(self, policy):
        profile = profile_client(policy)
        assert profile.capacity == policy.capacity
        assert profile.eviction_floor == policy.eviction_pending_floor
        assert profile.future_limit == policy.future_limit_per_account
        if policy.replace_bump == 0.0:
            assert profile.replace_bump == 0.0
        else:
            assert profile.replace_bump == pytest.approx(
                policy.replace_bump, abs=0.005
            )

    def test_profile_table_covers_all(self):
        profiles = profile_table([GETH_S, ALETH_S])
        assert [p.name for p in profiles] == ["geth", "aleth"]

    def test_formatting_helpers(self):
        profile = profile_client(BESU_S)
        assert profile.future_limit_str() == "inf"
        assert profile.replace_bump_percent() == "10.0%"
