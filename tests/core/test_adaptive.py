"""Tests for workload-adaptive Y selection (Section 6.3) and the
occupancy-driven flood sizing that rides on top of it."""

import pytest

from repro.core.adaptive import (
    AdaptiveYController,
    adaptive_flood_size,
    choose_adaptive_y,
    inclusion_floor,
    pool_waterline,
)
from repro.core.campaign import TopoShot
from repro.core.config import MeasurementConfig
from repro.core.noninterference import check_conditions
from repro.errors import MeasurementError
from repro.eth.account import Wallet
from repro.eth.chain import Chain
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import INTRINSIC_GAS, Transaction, gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def priced_block(chain, wallet, factory, prices, t=1.0):
    txs = [
        factory.transfer(wallet.fresh_account(), gas_price=p) for p in prices
    ]
    return chain.append("m", t, txs)


@pytest.fixture
def observer(wallet):
    network = Network(seed=71)
    node = network.create_node("obs", NodeConfig(policy=GETH.scaled(64)))
    for price in (gwei(1.0), gwei(2.0), gwei(3.0), gwei(4.0), gwei(5.0)):
        node.mempool.add(
            Transaction(
                sender=wallet.fresh_account().address, nonce=0, gas_price=price
            )
        )
    return node


class TestSignals:
    def test_inclusion_floor_over_window(self, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        priced_block(chain, wallet, factory, [gwei(5), gwei(3)], t=1.0)
        priced_block(chain, wallet, factory, [gwei(4), gwei(2)], t=2.0)
        assert inclusion_floor(chain) == gwei(2)

    def test_floor_ignores_empty_blocks(self, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        chain.append("m", 1.0, [])
        priced_block(chain, wallet, factory, [gwei(3)], t=2.0)
        assert inclusion_floor(chain) == gwei(3)

    def test_floor_none_without_blocks(self):
        assert inclusion_floor(Chain()) is None

    def test_floor_window_limits_lookback(self, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        priced_block(chain, wallet, factory, [gwei(1)], t=1.0)  # old & cheap
        for i in range(10):
            priced_block(chain, wallet, factory, [gwei(5)], t=2.0 + i)
        assert inclusion_floor(chain, window=10) == gwei(5)

    def test_pool_waterline_percentile(self, observer):
        assert pool_waterline(observer, percentile=0.0) == gwei(1.0)
        assert pool_waterline(observer, percentile=0.5) == gwei(3.0)

    def test_waterline_none_on_empty_pool(self):
        network = Network(seed=72)
        node = network.create_node("empty", NodeConfig(policy=GETH.scaled(16)))
        assert pool_waterline(node) is None


class TestChooseY:
    def test_y_below_floor_above_waterline(self, observer, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        priced_block(chain, wallet, factory, [gwei(10), gwei(8)])
        decision = choose_adaptive_y(chain, observer, margin=0.8)
        assert decision.y == int(gwei(8) * 0.8)
        assert decision.inclusion_floor == gwei(8)
        assert "Y=" in decision.summary()
        # The chosen Y keeps V2 verifiable by construction.
        report = check_conditions(chain, 0.0, 10.0, y0=decision.y, expiry=0.0)
        assert report.v2_prices_above_y0

    def test_no_safe_band_raises(self, observer, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        # Miners include down at 1 gwei while the pool floor is ~1 gwei:
        # 80% of the floor dives under the waterline.
        priced_block(chain, wallet, factory, [gwei(1.0)])
        with pytest.raises(MeasurementError):
            choose_adaptive_y(chain, observer, margin=0.8)

    def test_fallback_to_pool_median_without_blocks(self, observer):
        decision = choose_adaptive_y(Chain(), observer)
        assert decision.inclusion_floor is None
        assert decision.y == observer.mempool.median_pending_price()

    def test_empty_everything_raises(self):
        network = Network(seed=73)
        node = network.create_node("empty", NodeConfig(policy=GETH.scaled(16)))
        with pytest.raises(MeasurementError):
            choose_adaptive_y(Chain(), node)

    def test_invalid_margin_rejected(self, observer):
        with pytest.raises(MeasurementError):
            choose_adaptive_y(Chain(), observer, margin=1.5)


class TestController:
    def test_controller_tracks_the_market(self, observer, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        priced_block(chain, wallet, factory, [gwei(10)], t=1.0)
        controller = AdaptiveYController(chain, observer, margin=0.5, window=2)
        first = controller.next_y()
        # The market heats up: cheaper txs stop being included.
        priced_block(chain, wallet, factory, [gwei(20)], t=2.0)
        priced_block(chain, wallet, factory, [gwei(20)], t=3.0)
        second = controller.next_y()
        assert second > first
        assert len(controller.decisions) == 2
        assert controller.last_decision.y == second


# ----------------------------------------------------------------------
# Occupancy-driven flood sizing (the Section 5.2.3 "right parameter"
# reused per round: a storm-inflated pool needs a smaller flood)
# ----------------------------------------------------------------------
FLOOD_CONFIG = MeasurementConfig(future_count=64)
Y = gwei(2.0)
FLOOD_PRICE = FLOOD_CONFIG.price_future(Y)
MARGIN = max(4, FLOOD_CONFIG.future_count // 16)


def pool_network(prices, capacity=64, seed=74):
    network = Network(seed=seed)
    network.create_node("t", NodeConfig(policy=GETH.scaled(capacity)))
    wallet = Wallet("flood-size")
    for price in prices:
        result = network.node("t").mempool.add(
            Transaction(
                sender=wallet.fresh_account().address, nonce=0, gas_price=price
            )
        )
        assert result.admitted
    return network


class TestAdaptiveFloodSize:
    def test_empty_pool_needs_the_full_static_flood(self):
        network = pool_network([])
        assert adaptive_flood_size(network, ["t"], FLOOD_CONFIG, Y) == 64

    def test_storm_residue_above_flood_price_shrinks_z(self):
        """48 of 64 slots hold storm transactions the flood cannot evict:
        only the 16 free slots (plus margin) need filling."""
        network = pool_network([gwei(50.0)] * 48)
        z = adaptive_flood_size(network, ["t"], FLOOD_CONFIG, Y)
        assert z == 16 + MARGIN
        assert z < FLOOD_CONFIG.future_count

    def test_cheap_residents_still_need_evicting(self):
        """Residents priced below the flood price are displaced one-for-one
        by admitted futures, so they count toward the requirement — a pool
        full of cheap traffic gets no discount."""
        assert gwei(1.0) < FLOOD_PRICE
        network = pool_network([gwei(1.0)] * 48)
        assert (
            adaptive_flood_size(network, ["t"], FLOOD_CONFIG, Y)
            == FLOOD_CONFIG.future_count
        )

    def test_saturated_pool_floors_at_the_margin(self):
        network = pool_network([gwei(50.0)] * 64)
        assert adaptive_flood_size(network, ["t"], FLOOD_CONFIG, Y) == MARGIN

    def test_requirement_is_the_max_over_involved_pools(self):
        """Every involved pool must be cleared, so the emptiest binds."""
        network = pool_network([gwei(50.0)] * 48)
        network.create_node("empty", NodeConfig(policy=GETH.scaled(64)))
        assert (
            adaptive_flood_size(network, ["t", "empty"], FLOOD_CONFIG, Y)
            == FLOOD_CONFIG.future_count
        )

    def test_never_exceeds_the_configured_z(self):
        """A pool larger than the static Z must not inflate the flood."""
        network = pool_network([], capacity=128)
        assert (
            adaptive_flood_size(network, ["t"], FLOOD_CONFIG, Y)
            == FLOOD_CONFIG.future_count
        )


class TestAdaptiveFloodCampaign:
    def test_off_by_default(self):
        assert MeasurementConfig().adaptive_flood is False
        assert MeasurementConfig().with_adaptive_flood().adaptive_flood
        assert not MeasurementConfig().with_adaptive_flood(False).adaptive_flood

    def test_storm_residue_shrinks_floods_without_losing_links(self):
        """Acceptance bar (ROADMAP, PR 9 leftover): after a storm leaves
        the pools mostly full of high-priced residue, the adaptive
        campaign sends measurably fewer transactions than the static one
        and still finds the same edges."""

        def measure(adaptive):
            network = quick_network(n_nodes=10, seed=55)
            prefill_mempools(network)
            wallet = Wallet("storm-residue")
            for node_id in sorted(network.nodes):
                pool = network.node(node_id).mempool
                while pool.free_slots > pool.policy.capacity // 4:
                    pool.add(
                        Transaction(
                            sender=wallet.fresh_account().address,
                            nonce=0,
                            gas_price=gwei(50.0),
                        )
                    )
            shot = TopoShot.attach(network)
            if adaptive:
                shot.config = shot.config.with_adaptive_flood()
            return shot.measure_network()

        static = measure(False)
        adaptive = measure(True)
        assert adaptive.edges == static.edges
        assert str(adaptive.score) == str(static.score)
        assert adaptive.transactions_sent < static.transactions_sent
