"""Tests for workload-adaptive Y selection (Section 6.3)."""

import pytest

from repro.core.adaptive import (
    AdaptiveYController,
    choose_adaptive_y,
    inclusion_floor,
    pool_waterline,
)
from repro.core.noninterference import check_conditions
from repro.errors import MeasurementError
from repro.eth.chain import Chain
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import INTRINSIC_GAS, Transaction, gwei


def priced_block(chain, wallet, factory, prices, t=1.0):
    txs = [
        factory.transfer(wallet.fresh_account(), gas_price=p) for p in prices
    ]
    return chain.append("m", t, txs)


@pytest.fixture
def observer(wallet):
    network = Network(seed=71)
    node = network.create_node("obs", NodeConfig(policy=GETH.scaled(64)))
    for price in (gwei(1.0), gwei(2.0), gwei(3.0), gwei(4.0), gwei(5.0)):
        node.mempool.add(
            Transaction(
                sender=wallet.fresh_account().address, nonce=0, gas_price=price
            )
        )
    return node


class TestSignals:
    def test_inclusion_floor_over_window(self, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        priced_block(chain, wallet, factory, [gwei(5), gwei(3)], t=1.0)
        priced_block(chain, wallet, factory, [gwei(4), gwei(2)], t=2.0)
        assert inclusion_floor(chain) == gwei(2)

    def test_floor_ignores_empty_blocks(self, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        chain.append("m", 1.0, [])
        priced_block(chain, wallet, factory, [gwei(3)], t=2.0)
        assert inclusion_floor(chain) == gwei(3)

    def test_floor_none_without_blocks(self):
        assert inclusion_floor(Chain()) is None

    def test_floor_window_limits_lookback(self, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        priced_block(chain, wallet, factory, [gwei(1)], t=1.0)  # old & cheap
        for i in range(10):
            priced_block(chain, wallet, factory, [gwei(5)], t=2.0 + i)
        assert inclusion_floor(chain, window=10) == gwei(5)

    def test_pool_waterline_percentile(self, observer):
        assert pool_waterline(observer, percentile=0.0) == gwei(1.0)
        assert pool_waterline(observer, percentile=0.5) == gwei(3.0)

    def test_waterline_none_on_empty_pool(self):
        network = Network(seed=72)
        node = network.create_node("empty", NodeConfig(policy=GETH.scaled(16)))
        assert pool_waterline(node) is None


class TestChooseY:
    def test_y_below_floor_above_waterline(self, observer, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        priced_block(chain, wallet, factory, [gwei(10), gwei(8)])
        decision = choose_adaptive_y(chain, observer, margin=0.8)
        assert decision.y == int(gwei(8) * 0.8)
        assert decision.inclusion_floor == gwei(8)
        assert "Y=" in decision.summary()
        # The chosen Y keeps V2 verifiable by construction.
        report = check_conditions(chain, 0.0, 10.0, y0=decision.y, expiry=0.0)
        assert report.v2_prices_above_y0

    def test_no_safe_band_raises(self, observer, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        # Miners include down at 1 gwei while the pool floor is ~1 gwei:
        # 80% of the floor dives under the waterline.
        priced_block(chain, wallet, factory, [gwei(1.0)])
        with pytest.raises(MeasurementError):
            choose_adaptive_y(chain, observer, margin=0.8)

    def test_fallback_to_pool_median_without_blocks(self, observer):
        decision = choose_adaptive_y(Chain(), observer)
        assert decision.inclusion_floor is None
        assert decision.y == observer.mempool.median_pending_price()

    def test_empty_everything_raises(self):
        network = Network(seed=73)
        node = network.create_node("empty", NodeConfig(policy=GETH.scaled(16)))
        with pytest.raises(MeasurementError):
            choose_adaptive_y(Chain(), node)

    def test_invalid_margin_rejected(self, observer):
        with pytest.raises(MeasurementError):
            choose_adaptive_y(Chain(), observer, margin=1.5)


class TestController:
    def test_controller_tracks_the_market(self, observer, wallet, factory):
        chain = Chain(gas_limit=3 * INTRINSIC_GAS)
        priced_block(chain, wallet, factory, [gwei(10)], t=1.0)
        controller = AdaptiveYController(chain, observer, margin=0.5, window=2)
        first = controller.next_y()
        # The market heats up: cheaper txs stop being included.
        priced_block(chain, wallet, factory, [gwei(20)], t=2.0)
        priced_block(chain, wallet, factory, [gwei(20)], t=3.0)
        second = controller.next_y()
        assert second > first
        assert len(controller.decisions) == 2
        assert controller.last_decision.y == second
