"""Property-based tests of TopoShot's core invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MeasurementConfig
from repro.core.campaign import TopoShot
from repro.core.schedule import build_schedule
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH, MempoolPolicy


class TestPriceBandProperty:
    @given(
        r=st.floats(min_value=0.01, max_value=0.5),
        y=st.integers(min_value=10**6, max_value=10**12),
    )
    @settings(max_examples=200, deadline=None)
    def test_isolation_band_holds_for_any_r_and_y(self, r, y):
        """For every client bump R and price Y: txA replaces txB but never
        txC — the arithmetic Section 5.2's correctness rests on."""
        policy = MempoolPolicy(
            name="p", replace_bump=r, future_limit_per_account=None,
            eviction_pending_floor=0, capacity=16,
        )
        config = MeasurementConfig(
            replace_bump=r, future_count=16, future_per_account=None
        )
        price_a = config.price_a(y)
        price_b = config.price_b(y)
        price_c = config.price_c(y)
        assert policy.replacement_allowed(price_b, price_a)
        assert not policy.replacement_allowed(price_c, price_a)
        assert not policy.replacement_allowed(price_c, price_b)
        # The flood price dominates everything the measurement plants.
        assert config.price_future(y) >= price_a

    @given(
        r=st.floats(min_value=0.01, max_value=0.5),
        y=st.integers(min_value=10**6, max_value=10**12),
    )
    @settings(max_examples=200, deadline=None)
    def test_flood_cannot_be_replaced_by_txa(self, r, y):
        """txA must never displace the flood's own transactions either."""
        policy = MempoolPolicy(
            name="p", replace_bump=r, future_limit_per_account=None,
            eviction_pending_floor=0, capacity=16,
        )
        config = MeasurementConfig(
            replace_bump=r, future_count=16, future_per_account=None
        )
        assert not policy.replacement_allowed(
            config.price_future(y), config.price_a(y)
        )


class TestScheduleBoundsProperty:
    @given(
        n=st.integers(min_value=2, max_value=60),
        k=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_first_iteration_dominates_for_sane_k(self, n, k):
        """For K <= 3N/4 (every practical setting — the budget rule yields
        far smaller K), the first round-1 iteration is the largest, which
        is why ``group_size_for`` only needs to bound K*(N-K). Beyond that
        regime the runtime guard in ``measure_par`` still applies."""
        ids = [f"n{i}" for i in range(n)]
        schedule = build_schedule(ids, k)
        if not schedule:
            return
        sizes = [it.edge_count for it in schedule]
        if k <= 3 * n / 4:
            assert max(sizes) == sizes[0]
        assert sizes[0] <= min(k, n) * n

    @given(
        n=st.integers(min_value=4, max_value=80),
        budget=st.integers(min_value=20, max_value=2000),
    )
    @settings(max_examples=100, deadline=None)
    def test_budgeted_group_size_keeps_every_iteration_within_budget(
        self, n, budget
    ):
        """The end-to-end guarantee: the K chosen from the slot budget
        never produces an iteration that needs more txC slots than the
        budget allows."""
        from repro.errors import MeasurementError

        config = MeasurementConfig(mempool_slots_budget=budget)
        try:
            k = config.group_size_for(n)
        except MeasurementError:
            return  # budget too small for this network: rejected upfront
        ids = [f"n{i}" for i in range(n)]
        for iteration in build_schedule(ids, k):
            assert iteration.edge_count <= budget


class TestDominantPolicyRegression:
    def test_custom_bump_nodes_never_define_the_config(self):
        """Regression: a custom high-R node sharing the majority's name and
        capacity must not be picked as the 'dominant' policy — its R would
        price txA above the majority's replacement threshold and break
        isolation network-wide."""
        network = Network(seed=1)
        base = GETH.scaled(128)
        custom = base.with_bump(0.25)
        # Custom-bump node created FIRST (the old bug picked the first of
        # the tied name/capacity group).
        network.create_node("custom", NodeConfig(policy=custom))
        for i in range(4):
            network.create_node(f"n{i}", NodeConfig(policy=base))
        network.connect("custom", "n0")
        for i in range(3):
            network.connect(f"n{i}", f"n{i + 1}")
        shot = TopoShot.attach(network)
        assert shot.config.replace_bump == base.replace_bump

    def test_majority_policy_wins_even_with_minority_clients(self):
        from repro.eth.policies import PARITY

        network = Network(seed=2)
        geth = GETH.scaled(128)
        parity = PARITY.scaled(192)
        for i in range(5):
            network.create_node(f"g{i}", NodeConfig(policy=geth))
        network.create_node("p0", NodeConfig(policy=parity))
        for i in range(4):
            network.connect(f"g{i}", f"g{i + 1}")
        network.connect("p0", "g0")
        shot = TopoShot.attach(network)
        assert shot.config.replace_bump == geth.replace_bump
        assert shot.config.future_count == geth.capacity
