"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSchedule:
    def test_schedule_command(self, capsys):
        assert main(["schedule", "--nodes", "500", "--budget", "2000"]) == 0
        out = capsys.readouterr().out
        assert "N=500 nodes, K=4" in out
        assert "127" in out  # the paper's Ropsten iteration count

    def test_schedule_explicit_k(self, capsys):
        assert main(["schedule", "--nodes", "8", "--group-size", "3"]) == 0
        out = capsys.readouterr().out
        assert "pairs to cover     : 28" in out


class TestEstimateCost:
    def test_paper_defaults(self, capsys):
        assert main(["estimate-cost"]) == 0
        out = capsys.readouterr().out
        assert "8000 nodes" in out
        assert "M USD" in out

    def test_custom_size(self, capsys):
        assert main(["estimate-cost", "--nodes", "100", "--eth-price", "1000"]) == 0
        assert "100 nodes" in capsys.readouterr().out


class TestProfile:
    def test_profile_prints_all_clients(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        for client in ("geth", "parity", "nethermind", "besu", "aleth"):
            assert client in out
        assert "NO (R=0)" in out


class TestMeasure:
    def test_measure_quick_network(self, capsys):
        assert main(["measure", "--nodes", "10", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "edges detected" in out
        assert "precision=1.000" in out

    def test_measure_with_analysis(self, capsys):
        assert (
            main(["measure", "--nodes", "10", "--seed", "3", "--analyze"]) == 0
        )
        out = capsys.readouterr().out
        assert "degree distribution" in out
        assert "Modularity" in out

    def test_measure_with_output_files(self, capsys, tmp_path):
        out_json = tmp_path / "m.json"
        out_graph = tmp_path / "g.txt"
        assert (
            main(
                [
                    "measure", "--nodes", "10", "--seed", "3",
                    "--output", str(out_json),
                    "--export-graph", str(out_graph),
                ]
            )
            == 0
        )
        from repro.io import load_measurement

        loaded = load_measurement(out_json)
        assert len(loaded.edges) > 0
        assert out_graph.read_text().strip()

    def test_analyze_roundtrip(self, capsys, tmp_path):
        out_json = tmp_path / "m.json"
        main(["measure", "--nodes", "10", "--seed", "3", "--output", str(out_json)])
        capsys.readouterr()
        assert (
            main(["analyze", str(out_json), "--communities", "--security"]) == 0
        )
        out = capsys.readouterr().out
        assert "graph statistics vs ER/CM/BA" in out
        assert "communities:" in out
        assert "security assessment:" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestMeasureAdversarial:
    def test_byzantine_frac_with_invariants(self, capsys):
        assert (
            main(
                [
                    "measure", "--nodes", "10", "--seed", "3",
                    "--byzantine-frac", "0.2", "--invariants",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "byzantine" in out.lower()
        assert "invariants:" in out

    def test_byzantine_mix_spec(self, capsys):
        assert (
            main(
                [
                    "measure", "--nodes", "10", "--seed", "3",
                    "--byzantine-mix", "censor:0.2",
                ]
            )
            == 0
        )

    def test_cross_validate_flag(self, capsys):
        assert (
            main(
                [
                    "measure", "--nodes", "10", "--seed", "3",
                    "--byzantine-frac", "0.2", "--cross-validate", "2",
                ]
            )
            == 0
        )

    def test_both_mix_flags_rejected(self, capsys):
        assert (
            main(
                [
                    "measure", "--nodes", "10",
                    "--byzantine-frac", "0.2",
                    "--byzantine-mix", "censor:0.2",
                ]
            )
            == 2
        )

    def test_bad_mix_spec_rejected(self, capsys):
        assert (
            main(["measure", "--nodes", "10", "--byzantine-mix", "gremlin:1"])
            == 2
        )

    def test_sharded_execution_rejects_adversarial_flags(self, capsys):
        assert (
            main(
                [
                    "measure", "--nodes", "10", "--workers", "2",
                    "--byzantine-frac", "0.2",
                ]
            )
            == 2
        )
        assert (
            main(["measure", "--nodes", "10", "--workers", "2", "--invariants"])
            == 2
        )
