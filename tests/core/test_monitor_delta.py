"""Tests for the incremental (delta) monitor mode: O(churn) re-probing.

The contract under test: a static network costs *zero* probes per round,
churn signals (peer-count polling, explicit hints) pin re-probing to the
affected pairs, the incremental view converges to what a full re-snapshot
would measure, and each round streams one deterministic JSON line.
"""

import io
import json

import pytest

from repro.core.campaign import TopoShot
from repro.core.monitor import TopologyMonitor, rewire_random_links
from repro.core.results import edge
from repro.errors import MeasurementError
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def build_monitor(seed=57, n_nodes=14, **monitor_kwargs):
    network = quick_network(n_nodes=n_nodes, seed=seed)
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_repeats(2)
    monitor = TopologyMonitor(shot, **monitor_kwargs)
    return network, shot, monitor


class TestDeltaBasics:
    def test_requires_base_snapshot(self):
        _, _, monitor = build_monitor()
        with pytest.raises(MeasurementError):
            monitor.delta_round()

    def test_static_network_probes_nothing(self):
        _, _, monitor = build_monitor()
        base = monitor.take_snapshot()
        report = monitor.delta_round()
        assert monitor.probe_savings["probed_pairs"] == 0
        assert monitor.probe_savings["delta_rounds"] == 1
        assert report.added == set() and report.removed == set()
        assert monitor.current_edges == base.edges

    def test_stale_edges_reprobed_and_reconfirmed(self):
        # TTL comfortably above the base campaign's own sim duration (the
        # per-edge confirmation times are the in-campaign observed_at).
        network, _, monitor = build_monitor(staleness_ttl=500.0)
        base = monitor.take_snapshot()
        assert monitor.stale_edges(network.sim.now) == set()
        later = network.sim.now + 600.0
        assert monitor.stale_edges(later) == base.edges
        network.sim.run(until=later)
        report = monitor.delta_round()
        # Everything was stale, so everything was re-probed — and on a
        # static network reconfirmed rather than churned.
        assert monitor.probe_savings["probed_pairs"] == len(base.edges)
        assert report.removed == set()
        assert monitor.current_edges == base.edges
        # Confirmation times were refreshed: nothing is stale anymore.
        assert monitor.stale_edges(network.sim.now) == set()


class TestChurnSignals:
    def test_hinted_churn_detected(self):
        network, _, monitor = build_monitor()
        monitor.take_snapshot()
        removed, added = rewire_random_links(network, fraction=0.2)
        for e in removed | added:
            for node_id in e:
                monitor.note_churn_hint(node_id)
        report = monitor.delta_round()
        # Probe cost is O(churn), not O(network).
        universe = len(monitor.targets) * (len(monitor.targets) - 1) // 2
        assert 0 < monitor.probe_savings["probed_pairs"] < universe
        # Removed links between targets are detected exactly (precision
        # is exact); added ones are bounded by recall.
        target_set = set(monitor.targets)
        removed_in_scope = {e for e in removed if set(e) <= target_set}
        assert removed_in_scope <= report.removed
        added_in_scope = {e for e in added if set(e) <= target_set}
        assert len(report.added & added_in_scope) >= int(
            0.7 * len(added_in_scope)
        )

    def test_peer_count_polling_flags_rewired_nodes(self):
        network, _, monitor = build_monitor()
        monitor.take_snapshot()
        assert monitor.poll_peer_counts() == set()
        removed, added = rewire_random_links(network, fraction=0.2)
        touched = {n for e in removed | added for n in e}
        flagged = monitor.poll_peer_counts()
        assert flagged
        assert flagged <= touched
        report = monitor.delta_round()
        assert monitor.probe_savings["probed_pairs"] > 0
        assert len(report.added) + len(report.removed) > 0

    def test_delta_view_matches_full_resnapshot(self):
        network, shot, monitor = build_monitor()
        monitor.take_snapshot()
        removed, added = rewire_random_links(network, fraction=0.15)
        for e in removed | added:
            for node_id in e:
                monitor.note_churn_hint(node_id)
        monitor.delta_round()
        incremental_view = set(monitor.current_edges)
        full = shot.measure_network(
            targets=list(monitor.targets), preprocess=False
        )
        assert incremental_view == set(full.edges)

    def test_max_pairs_truncates(self):
        network, _, monitor = build_monitor(staleness_ttl=500.0)
        monitor.take_snapshot()
        network.sim.run(until=network.sim.now + 600.0)
        monitor.delta_round(max_pairs=3)
        assert monitor.probe_savings["probed_pairs"] == 3


class TestStreamingAndAccounting:
    def test_json_lines_stream(self):
        network, _, monitor = build_monitor(stream=io.StringIO())
        monitor.take_snapshot()
        monitor.delta_round()
        removed, added = rewire_random_links(network, fraction=0.2)
        for e in removed | added:
            for node_id in e:
                monitor.note_churn_hint(node_id)
        monitor.delta_round()
        lines = monitor.stream.getvalue().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["probed_pairs"] == 0
        for record in records:
            assert set(record) >= {
                "added",
                "removed",
                "stable_count",
                "probed_pairs",
                "edge_count",
                "from_time",
                "to_time",
            }
            for pair in record["added"] + record["removed"]:
                assert pair == sorted(pair)

    def test_probe_savings_accounting(self):
        network, _, monitor = build_monitor()
        monitor.take_snapshot()
        monitor.delta_round()
        monitor.delta_round()
        savings = monitor.probe_savings
        universe = len(monitor.targets) * (len(monitor.targets) - 1) // 2
        assert savings["delta_rounds"] == 2
        assert savings["universe_pairs"] == 2 * universe
        assert savings["probed_pairs"] == 0

    def test_run_continuous(self):
        network = quick_network(n_nodes=12, seed=33)
        prefill_mempools(network)
        shot = TopoShot.attach(network)
        shot.config = shot.config.with_repeats(2)
        monitor = TopologyMonitor(
            shot,
            between_rounds=lambda: [
                monitor.note_churn_hint(node_id)
                for e in (
                    lambda pair: pair[0] | pair[1]
                )(rewire_random_links(network, 0.1))
                for node_id in e
            ],
        )
        reports = monitor.run_continuous(rounds=2)
        assert len(reports) == 2
        # Base snapshot + two delta snapshots.
        assert len(monitor.snapshots) == 3
        assert monitor.probe_savings["delta_rounds"] == 2

    def test_delta_rounds_append_lightweight_snapshots(self):
        network, _, monitor = build_monitor()
        base = monitor.take_snapshot()
        monitor.delta_round()
        assert len(monitor.snapshots) == 2
        assert monitor.snapshots[-1].edges == base.edges
        series = monitor.churn_series()
        assert len(series) == 1
        assert series[0].churn_rate == 0.0
