"""Tests for Y estimation (Section 5.2.1)."""

from repro.core.config import MeasurementConfig
from repro.core.gas_estimator import (
    estimate_y,
    mempool_occupancy,
    needs_background_workload,
    pending_rank_of_price,
)
from repro.eth.node import Node, NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import Transaction, gwei
from repro.sim.engine import Simulator


def node_with_prices(prices):
    node = Node("n", Simulator(seed=0), NodeConfig(policy=GETH.scaled(64)))
    for index, price in enumerate(prices):
        node.mempool.add(
            Transaction(sender=f"0xsender{index}", nonce=0, gas_price=price)
        )
    return node


class TestEstimateY:
    def test_explicit_config_wins(self):
        node = node_with_prices([100, 200, 300])
        config = MeasurementConfig(gas_price_y=777)
        assert estimate_y(node, config) == 777

    def test_median_of_pending(self):
        node = node_with_prices([100, 300, 200])
        assert estimate_y(node, MeasurementConfig()) == 200

    def test_even_count_averages_middle_pair(self):
        node = node_with_prices([100, 200, 300, 400])
        assert estimate_y(node, MeasurementConfig()) == 250

    def test_empty_pool_falls_back_to_default(self):
        node = node_with_prices([])
        config = MeasurementConfig(default_gas_price_y=gwei(2.0))
        assert estimate_y(node, config) == gwei(2.0)


class TestOccupancy:
    def test_occupancy_fraction(self):
        node = node_with_prices([100] * 16)
        assert mempool_occupancy(node) == 16 / 64

    def test_needs_background_workload_on_empty_testnet(self):
        """The under-loaded Ropsten situation of Section 6.2.1."""
        node = node_with_prices([100] * 4)
        assert needs_background_workload(node)

    def test_full_pool_needs_nothing(self):
        node = node_with_prices([100] * 64)
        assert not needs_background_workload(node)


class TestPendingRank:
    def test_rank_counts_cheaper_pending(self):
        node = node_with_prices([100, 200, 300, 400])
        assert pending_rank_of_price(node, 250) == 2
        assert pending_rank_of_price(node, 100) == 0
        assert pending_rank_of_price(node, 10**9) == 4

    def test_rank_of_empty_pool_is_none(self):
        node = node_with_prices([])
        assert pending_rank_of_price(node, 100) is None
