"""Tests for MeasurementConfig price bands and derived parameters."""

import pytest

from repro.core.config import MeasurementConfig
from repro.errors import MeasurementError, UnsupportedClientError
from repro.eth.policies import ALETH, BESU, GETH, NETHERMIND, PARITY


class TestPriceBand:
    """The isolation arithmetic of Section 5.2."""

    def test_txa_replaces_txb_but_not_txc(self):
        config = MeasurementConfig.for_policy(GETH)
        y = 1_000_000_000
        a, b, c = config.price_a(y), config.price_b(y), config.price_c(y)
        # txA over txB: >= R bump -> replacement succeeds on the sink.
        assert GETH.replacement_allowed(b, a)
        # txA over txC: R/2 bump -> replacement fails everywhere else.
        assert not GETH.replacement_allowed(c, a)
        # txB under txC: can never displace txC on third parties.
        assert not GETH.replacement_allowed(c, b)

    def test_flood_price_replaces_nothing_needed(self):
        config = MeasurementConfig.for_policy(GETH)
        y = 10**9
        assert config.price_future(y) > config.price_a(y) > y > config.price_b(y)

    @pytest.mark.parametrize("policy", [GETH, PARITY, BESU])
    def test_band_holds_for_all_measurable_clients(self, policy):
        config = MeasurementConfig.for_policy(policy)
        y = 7 * 10**8
        assert policy.replacement_allowed(config.price_b(y), config.price_a(y))
        assert not policy.replacement_allowed(
            config.price_c(y), config.price_a(y)
        )


class TestClientDerivation:
    def test_for_policy_copies_z_r_u(self):
        config = MeasurementConfig.for_policy(PARITY)
        assert config.future_count == PARITY.capacity
        assert config.replace_bump == PARITY.replace_bump
        assert config.future_per_account == PARITY.future_limit_per_account

    @pytest.mark.parametrize("policy", [NETHERMIND, ALETH])
    def test_unmeasurable_clients_rejected(self, policy):
        with pytest.raises(UnsupportedClientError):
            MeasurementConfig.for_policy(policy)

    def test_zero_bump_config_rejected_directly(self):
        with pytest.raises(UnsupportedClientError):
            MeasurementConfig(replace_bump=0.0)

    def test_slot_budget_keeps_paper_ratio(self):
        config = MeasurementConfig.for_policy(GETH)
        assert config.mempool_slots_budget == 2000
        scaled = MeasurementConfig.for_policy(GETH.scaled(512))
        assert scaled.mempool_slots_budget == 512 * 2000 // 5120


class TestFloodAccounts:
    def test_ceil_of_z_over_u(self):
        config = MeasurementConfig(future_count=100, future_per_account=30)
        assert config.flood_accounts == 4

    def test_unlimited_u_uses_one_account(self):
        config = MeasurementConfig(future_count=5000, future_per_account=None)
        assert config.flood_accounts == 1


class TestGroupSize:
    def test_paper_example(self):
        """Ropsten at N=500, budget 2000 -> K=4 (Section 5.3.2)."""
        config = MeasurementConfig.for_policy(GETH)
        assert config.group_size_for(500) == 4

    def test_shrinks_until_first_iteration_fits(self):
        config = MeasurementConfig(mempool_slots_budget=100)
        k = config.group_size_for(40)
        assert k * (40 - k) <= 100

    def test_impossible_budget_raises(self):
        config = MeasurementConfig(mempool_slots_budget=20)
        with pytest.raises(MeasurementError):
            config.group_size_for(100)

    def test_invalid_network_size(self):
        with pytest.raises(MeasurementError):
            MeasurementConfig().group_size_for(0)


class TestBuilders:
    def test_with_future_count(self):
        config = MeasurementConfig().with_future_count(42)
        assert config.future_count == 42

    def test_with_repeats(self):
        assert MeasurementConfig().with_repeats(3).repeats == 3

    def test_with_gas_price(self):
        assert MeasurementConfig().with_gas_price(123).gas_price_y == 123

    def test_invalid_values_rejected(self):
        with pytest.raises(MeasurementError):
            MeasurementConfig(future_count=0)
        with pytest.raises(MeasurementError):
            MeasurementConfig(repeats=0)
        with pytest.raises(MeasurementError):
            MeasurementConfig(future_per_account=0)


class TestRetryFields:
    def test_defaults_disable_retries(self):
        config = MeasurementConfig()
        assert config.max_retries == 0
        assert config.retry_backoff_factor >= 1.0

    def test_with_retries_builder(self):
        config = MeasurementConfig().with_retries(3, backoff=0.5, factor=3.0)
        assert config.max_retries == 3
        assert config.retry_backoff == 0.5
        assert config.retry_backoff_factor == 3.0

    def test_with_retries_keeps_other_backoff_fields(self):
        config = MeasurementConfig().with_retries(2)
        assert config.retry_backoff == MeasurementConfig().retry_backoff

    def test_negative_max_retries_rejected(self):
        with pytest.raises(MeasurementError, match="max_retries"):
            MeasurementConfig(max_retries=-1)

    def test_negative_backoff_rejected(self):
        with pytest.raises(MeasurementError, match="retry_backoff"):
            MeasurementConfig(retry_backoff=-0.1)

    def test_shrinking_backoff_factor_rejected(self):
        with pytest.raises(MeasurementError, match="retry_backoff_factor"):
            MeasurementConfig(retry_backoff_factor=0.5)

    def test_negative_send_timeout_rejected(self):
        with pytest.raises(MeasurementError, match="send_timeout"):
            MeasurementConfig(send_timeout=-1.0)
