"""Tests for the pre-processing phase (Sections 5.2.3 and 6.2.1)."""

import pytest

from repro.core.config import MeasurementConfig
from repro.core.preprocess import (
    calibrate_future_count,
    detect_future_forwarders,
    preprocess_targets,
)
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH, NETHERMIND
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.workloads import prefill_mempools


@pytest.fixture
def mixed_network():
    """A hand-built network with one of each misbehaviour."""
    network = Network(seed=31)
    base = GETH.scaled(128)
    network.create_node("good-1", NodeConfig(policy=base))
    network.create_node("good-2", NodeConfig(policy=base))
    network.create_node(
        "forwarder", NodeConfig(policy=base, forwards_future=True)
    )
    network.create_node(
        "no-rpc", NodeConfig(policy=base, responds_to_rpc=False)
    )
    network.create_node(
        "nethermind",
        NodeConfig(policy=NETHERMIND.scaled(64), client_version="Nethermind/v1.10"),
    )
    ids = ["good-1", "good-2", "forwarder", "no-rpc", "nethermind"]
    for i in range(len(ids) - 1):
        network.connect(ids[i], ids[i + 1])
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    return network, supernode, ids


class TestPreprocess:
    def test_all_rejection_categories(self, mixed_network):
        network, supernode, ids = mixed_network
        config = MeasurementConfig.for_policy(GETH.scaled(128))
        report = preprocess_targets(network, supernode, ids, config)
        assert report.rejected_client == ["nethermind"]
        assert report.rejected_unresponsive == ["no-rpc"]
        assert report.rejected_future_forwarders == ["forwarder"]
        assert sorted(report.accepted) == ["good-1", "good-2"]

    def test_summary_counts(self, mixed_network):
        network, supernode, ids = mixed_network
        config = MeasurementConfig.for_policy(GETH.scaled(128))
        report = preprocess_targets(network, supernode, ids, config)
        assert "accepted=2" in report.summary()
        assert len(report.rejected) == 3

    def test_checks_can_be_disabled(self, mixed_network):
        network, supernode, ids = mixed_network
        config = MeasurementConfig.for_policy(GETH.scaled(128))
        report = preprocess_targets(
            network,
            supernode,
            ids,
            config,
            check_future_forwarding=False,
            check_responsiveness=False,
        )
        assert "forwarder" in report.accepted
        assert "no-rpc" in report.accepted
        assert "nethermind" not in report.accepted  # version filter stays

    def test_monitor_node_detached_after_probe(self, mixed_network):
        network, supernode, ids = mixed_network
        config = MeasurementConfig.for_policy(GETH.scaled(128))
        before = set(network.node_ids)
        detect_future_forwarders(
            network, supernode, ids, config, Wallet("probe")
        )
        monitors = set(network.node_ids) - before
        assert all(network.node(m).degree == 0 for m in monitors)


class TestCalibration:
    def test_finds_minimal_sufficient_z(self):
        """The speculative-B' calibration discovers a big custom pool."""
        network = Network(seed=32)
        base = GETH.scaled(128)
        network.create_node("target", NodeConfig(policy=base.with_capacity(512)))
        network.create_node("local-b", NodeConfig(policy=base))
        network.create_node("c1", NodeConfig(policy=base))
        network.connect("target", "local-b")
        network.connect("target", "c1")
        network.connect("local-b", "c1")
        prefill_mempools(network, median_price=gwei(1.0))
        supernode = Supernode.join(network)
        config = MeasurementConfig.for_policy(base)
        found = calibrate_future_count(
            network, supernode, "target", "local-b", config, [128, 384, 700]
        )
        # The default Z=128 cannot reach txC's eviction rank (~median of a
        # 512-slot pool); the first sufficient candidate is discovered.
        assert found == 384

    def test_returns_none_when_nothing_works(self):
        network = Network(seed=33)
        base = GETH.scaled(128)
        # Target that never relays: no Z can make the link visible.
        network.create_node(
            "target", NodeConfig(policy=base, relays_transactions=False)
        )
        network.create_node("local-b", NodeConfig(policy=base))
        network.connect("target", "local-b")
        prefill_mempools(network, median_price=gwei(1.0))
        supernode = Supernode.join(network)
        config = MeasurementConfig.for_policy(base)
        assert (
            calibrate_future_count(
                network, supernode, "target", "local-b", config, [128]
            )
            is None
        )

    def test_requires_known_link(self):
        network = Network(seed=34)
        base = GETH.scaled(128)
        network.create_node("target", NodeConfig(policy=base))
        network.create_node("local-b", NodeConfig(policy=base))
        supernode = Supernode.join(network)
        config = MeasurementConfig.for_policy(base)
        with pytest.raises(ValueError):
            calibrate_future_count(
                network, supernode, "target", "local-b", config, [128]
            )
