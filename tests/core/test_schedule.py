"""Tests for the two-round parallel schedule (Section 5.3.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import (
    ScheduleIteration,
    build_schedule,
    expected_iteration_count,
    verify_schedule_coverage,
)
from repro.errors import MeasurementError


def ids(n):
    return [f"n{i}" for i in range(n)]


class TestCoverage:
    @pytest.mark.parametrize("n,k", [(8, 3), (10, 2), (24, 6), (7, 7), (5, 1)])
    def test_every_pair_exactly_once(self, n, k):
        schedule = build_schedule(ids(n), k)
        verify_schedule_coverage(ids(n), schedule)

    def test_paper_example_n8_k3(self):
        """Figure 3b: N=8, K=3 gives two round-1 and two round-2 iterations."""
        schedule = build_schedule(ids(8), 3)
        round1 = [it for it in schedule if it.round_index == 1]
        round2 = [it for it in schedule if it.round_index == 2]
        assert len(round1) == 2
        assert len(round2) == 2
        # First iteration: group {n0,n1,n2} vs the other five -> 15 edges.
        assert round1[0].edge_count == 15
        assert round1[1].edge_count == 6

    def test_sources_and_sinks_disjoint_in_every_iteration(self):
        for iteration in build_schedule(ids(20), 4):
            assert not set(iteration.sources) & set(iteration.sinks)

    def test_trivial_networks(self):
        assert build_schedule(ids(0), 3) == []
        assert build_schedule(ids(1), 3) == []
        two = build_schedule(ids(2), 3)
        assert len(two) == 1
        assert two[0].edges == (("n0", "n1"),)


class TestComplexity:
    @pytest.mark.parametrize("n,k", [(100, 10), (60, 3), (500, 4)])
    def test_iteration_count_near_paper_formula(self, n, k):
        schedule = build_schedule(ids(n), k)
        expected = expected_iteration_count(n, k)
        assert abs(len(schedule) - expected) <= 1 + math.ceil(math.log2(k))

    def test_paper_ropsten_count(self):
        """N=500, K=4 -> 125 + 2 = 127 iterations (Section 5.3.2)."""
        assert expected_iteration_count(500, 4) == 127

    def test_larger_k_fewer_iterations(self):
        n = 120
        counts = [len(build_schedule(ids(n), k)) for k in (2, 5, 10, 30)]
        assert counts == sorted(counts, reverse=True)


class TestValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(MeasurementError):
            build_schedule(["a", "a", "b"], 2)

    def test_bad_group_size_rejected(self):
        with pytest.raises(MeasurementError):
            build_schedule(ids(5), 0)

    def test_overlapping_iteration_rejected(self):
        with pytest.raises(MeasurementError):
            ScheduleIteration(
                round_index=1,
                sources=("a", "b"),
                sinks=("b", "c"),
                edges=(("a", "b"),),
            )

    def test_verify_detects_missing_pair(self):
        schedule = build_schedule(ids(6), 2)[:-1]  # drop the last iteration
        with pytest.raises(MeasurementError):
            verify_schedule_coverage(ids(6), schedule)


@given(
    n=st.integers(min_value=2, max_value=40),
    k=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_schedule_covers_all_pairs_property(n, k):
    """Property: for any (N, K), every unordered pair is scheduled exactly
    once and every iteration keeps sources/sinks disjoint."""
    schedule = build_schedule(ids(n), k)
    verify_schedule_coverage(ids(n), schedule)
    for iteration in schedule:
        assert not set(iteration.sources) & set(iteration.sinks)
        for a, b in iteration.edges:
            assert a in iteration.sources
            assert b in iteration.sinks
