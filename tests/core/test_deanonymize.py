"""Tests for the use-case-3 deanonymization attack."""

import pytest

from repro.attacks.deanonymize import run_deanonymization, score_candidates
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode


@pytest.fixture
def client_server_network():
    """8 interconnected server nodes; 4 NAT'd clients, each dialled out to
    a distinct 2-server subset (their fingerprint)."""
    network = Network(seed=93)
    config = NodeConfig(policy=GETH.scaled(64))
    servers = [f"srv{i}" for i in range(8)]
    for server in servers:
        network.create_node(server, config)
    for i in range(len(servers)):
        network.connect(servers[i], servers[(i + 1) % len(servers)])
        network.connect(servers[i], servers[(i + 3) % len(servers)])
    fingerprints = {
        "client0": {"srv0", "srv1"},
        "client1": {"srv2", "srv3"},
        "client2": {"srv4", "srv5"},
        "client3": {"srv6", "srv7"},
    }
    for client, neighbors in fingerprints.items():
        network.create_node(client, config)
        for server in neighbors:
            network.connect(client, server)
    # The attacker monitors the public servers only (clients are NAT'd).
    attacker = Supernode.join(network, node_id="attacker", targets=servers)
    network.run(1.0)  # drain handshakes
    return network, attacker, servers, fingerprints


class TestDeanonymization:
    @pytest.mark.parametrize("client", ["client0", "client1", "client2", "client3"])
    def test_with_topology_knowledge_every_client_identified(
        self, client_server_network, client
    ):
        network, attacker, servers, fingerprints = client_server_network
        result = run_deanonymization(
            network, attacker, client, fingerprints, servers
        )
        assert result.correct, result.summary()
        assert result.rank_of_truth == 1

    def test_without_topology_knowledge_scores_are_uninformative(
        self, client_server_network
    ):
        """A topology-blind attacker assumes every client neighbours every
        server; the scores tie and carry no information."""
        network, attacker, servers, fingerprints = client_server_network
        blind = {client: set(servers) for client in fingerprints}
        result = run_deanonymization(
            network, attacker, "client2", blind, servers
        )
        scores = [score for _, score in result.ranking]
        assert len(set(scores)) == 1  # total tie: accusation is a coin flip

    def test_evidence_lists_early_relays(self, client_server_network):
        network, attacker, servers, fingerprints = client_server_network
        result = run_deanonymization(
            network, attacker, "client0", fingerprints, servers
        )
        # The client's own servers saw (and relayed) the probe first.
        assert set(result.first_relays[:1]) <= {"srv0", "srv1"}


class TestScoring:
    def test_early_relays_weigh_more(self):
        sets = {"x": {"s1"}, "y": {"s2"}}
        ranking = score_candidates(sets, ["s1", "s2"])
        assert ranking[0][0] == "x"

    def test_degree_normalization_penalizes_catch_alls(self):
        sets = {"focused": {"s1"}, "promiscuous": {"s1", "s2", "s3", "s4"}}
        ranking = score_candidates(sets, ["s1"])
        assert ranking[0][0] == "focused"

    def test_empty_neighbor_set_scores_zero(self):
        ranking = score_candidates({"x": set()}, ["s1"])
        assert ranking == [("x", 0.0)]
