"""Tests for the cross-protocol inference arena.

The acceptance-critical assertion is determinism: two arena runs from
the same spec must produce bit-identical canonical JSON. The rest pins
the fairness construction (identical worlds, one scoring universe) and
the comparative story the paper tells (TopoShot's precision tops the
active-edge baselines on a sparse golden topology).
"""

import json

import pytest

from repro.core.arena import (
    MEASURES,
    PROTOCOLS,
    ArenaSpec,
    run_arena,
    write_arena_json,
)

# One small, sparse golden spec shared by most tests: 12 nodes keeps the
# txprobe pair sweep cheap, outbound_dials=3 keeps the graph far from a
# clique so precision differences are visible.
GOLDEN = ArenaSpec(
    n_nodes=12,
    seed=7,
    outbound_dials=3,
    dethna_rounds=6,
    ethna_txs=30,
    timing_probes=2,
)


@pytest.fixture(scope="module")
def golden_result():
    return run_arena(GOLDEN)


class TestSpec:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocols"):
            ArenaSpec(protocols=("toposhot", "carrier-pigeon"))

    def test_rejects_conflicting_byzantine_config(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ArenaSpec(byzantine_spec="censor:0.1", byzantine_frac=0.1)

    def test_ordered_protocols_canonicalizes(self):
        spec = ArenaSpec(protocols=("ethna", "toposhot", "ethna"))
        assert spec.ordered_protocols == ("toposhot", "ethna")

    def test_spec_round_trips_through_dict(self):
        spec = ArenaSpec(
            n_nodes=32, seed=3, n_targets=8, byzantine_spec="censor:0.1"
        )
        assert ArenaSpec.from_dict(spec.to_dict()) == spec


class TestDeterminism:
    def test_two_runs_identical_canonical_json(self):
        """The acceptance criterion: bit-identical across reruns."""
        spec = ArenaSpec(
            n_nodes=10,
            seed=5,
            outbound_dials=3,
            dethna_rounds=4,
            ethna_txs=20,
            timing_probes=2,
        )
        dumps = [
            json.dumps(run_arena(spec).canonical_dict(), sort_keys=True)
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_canonical_dict_excludes_wall_clock(self, golden_result):
        canonical = json.dumps(golden_result.canonical_dict())
        assert "wall_clock_seconds" not in canonical
        full = json.dumps(golden_result.to_dict())
        assert "wall_clock_seconds" in full


class TestScorecard:
    def test_all_seven_protocols_run(self, golden_result):
        assert [o.protocol for o in golden_result.outcomes] == list(PROTOCOLS)

    def test_edge_protocols_scored_others_null(self, golden_result):
        for outcome in golden_result.outcomes:
            if MEASURES[outcome.protocol] in ("active_edges", "inactive_edges"):
                assert outcome.precision is not None
                assert outcome.recall is not None
                assert outcome.f1 is not None
            else:
                assert outcome.precision is None
                assert outcome.predicted_edges is None

    def test_toposhot_tops_active_edge_precision(self, golden_result):
        """The paper's comparative claim on the golden topology."""
        toposhot = golden_result.outcome("toposhot")
        assert toposhot.precision == 1.0
        assert toposhot.recall >= 0.85
        txprobe = golden_result.outcome("txprobe")
        assert txprobe.precision < toposhot.precision  # push bypass
        findnode = golden_result.outcome("findnode")
        assert findnode.precision < 1.0  # inactive != active edges

    def test_probe_costs_recorded(self, golden_result):
        toposhot = golden_result.outcome("toposhot")
        assert toposhot.transactions > 0
        assert toposhot.messages > 0
        # passive/message-only protocols send no probe transactions
        for protocol in ("findnode", "census", "ethna"):
            assert golden_result.outcome(protocol).transactions == 0
        # every protocol reports its simulated duration
        for outcome in golden_result.outcomes:
            assert outcome.sim_seconds > 0

    def test_ethna_reports_degree_error(self, golden_result):
        extras = golden_result.outcome("ethna").extras
        assert extras["peers_estimated"] > 0
        assert 0 <= extras["degree_mape"] < 1.5

    def test_summary_lists_every_protocol(self, golden_result):
        summary = golden_result.summary()
        for protocol in PROTOCOLS:
            assert protocol in summary


class TestUniverse:
    def test_subset_targets_bound_the_universe(self):
        spec = ArenaSpec(
            n_nodes=20,
            seed=3,
            n_targets=6,
            outbound_dials=4,
            protocols=("timing", "dethna"),
            dethna_rounds=4,
            timing_probes=2,
        )
        result = run_arena(spec)
        assert len(result.targets) == 6
        assert result.true_edges <= result.network_edges
        payload = result.to_dict()
        assert payload["universe"]["targets"] == result.targets

    def test_protocol_subset_runs_only_those(self):
        spec = ArenaSpec(
            n_nodes=10, seed=1, outbound_dials=3, protocols=("census", "findnode")
        )
        result = run_arena(spec)
        assert [o.protocol for o in result.outcomes] == ["findnode", "census"]


class TestJsonOutput:
    def test_write_arena_json(self, tmp_path, golden_result):
        path = write_arena_json(golden_result, tmp_path / "BENCH_arena.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert set(payload["protocols"]) == set(PROTOCOLS)
        for scorecard in payload["protocols"].values():
            assert "probe_cost" in scorecard
            assert "wall_clock_seconds" in scorecard

    def test_obs_sidecar_gets_arena_metrics(self):
        from repro.obs import Observability
        from repro.obs.wiring import ARENA_PROTOCOLS_RUN

        obs = Observability()
        spec = ArenaSpec(
            n_nodes=10, seed=1, outbound_dials=3, protocols=("findnode", "census")
        )
        run_arena(spec, obs=obs)
        samples = {
            (instrument.name, dict(instrument.labels).get("protocol"))
            for instrument in obs.metrics.collect()
        }
        assert (ARENA_PROTOCOLS_RUN, "findnode") in samples
        assert (ARENA_PROTOCOLS_RUN, "census") in samples
