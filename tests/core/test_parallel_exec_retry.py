"""Worker-crash resilience of the sharded executor.

Covers the pool retry loop in :func:`repro.core.parallel_exec.run_campaign`:
the deterministic exponential backoff schedule, recovery when a crashed
shard succeeds on retry, the in-process fallback once the retry budget is
exhausted, and checkpoint-verified resume when the driver dies mid-retry.

Crash injection is a monkeypatched ``_worker_run_shard``: the pool uses a
fork multiprocessing context, so worker processes inherit the patched
module attribute, and cross-process coordination happens through
``O_CREAT|O_EXCL`` marker files in a directory passed via the environment
(both survive the fork).
"""

import os
from pathlib import Path

import pytest

import repro.core.parallel_exec as parallel_exec
from repro.core.parallel_exec import (
    CampaignSpec,
    ParallelCheckpoint,
    run_campaign,
)
from repro.netgen.ethereum import NetworkSpec

_REAL_WORKER = parallel_exec._worker_run_shard
_ENV_DIR = "TOPOSHOT_RETRY_TEST_DIR"


def _spec(**overrides):
    defaults = dict(
        network=NetworkSpec(n_nodes=10, seed=7),
        prefill=False,
        n_shards=4,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def _always_crash(*_args, **_kwargs):
    raise RuntimeError("injected worker crash")


def _crash_once_per_shard(
    payload, fingerprint, index, n_shards, start, stop, collect_obs
):
    """First execution of each shard crashes; retries run the real worker.

    ``O_CREAT|O_EXCL`` makes the crashed-marker claim atomic across the
    pool's processes; the run log appends one byte per real execution so
    tests can assert a shard ran exactly N times.
    """
    base = Path(os.environ[_ENV_DIR])
    try:
        fd = os.open(base / f"crashed-{index}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        pass
    else:
        os.close(fd)
        raise RuntimeError(f"injected first-attempt crash for shard {index}")
    with open(base / f"ran-{index}", "ab") as handle:
        handle.write(b"x")
    return _REAL_WORKER(
        payload, fingerprint, index, n_shards, start, stop, collect_obs
    )


def _run_count(base: Path, index: int) -> int:
    runlog = base / f"ran-{index}"
    return runlog.stat().st_size if runlog.exists() else 0


@pytest.fixture()
def sleeps(monkeypatch):
    """Record (instead of performing) the retry loop's backoff waits."""
    recorded = []
    monkeypatch.setattr(parallel_exec.time, "sleep", recorded.append)
    return recorded


class TestRetryBackoff:
    def test_crashed_shards_recover_on_retry(self, monkeypatch, tmp_path, sleeps):
        baseline = run_campaign(_spec(), workers=1)
        monkeypatch.setenv(_ENV_DIR, str(tmp_path))
        monkeypatch.setattr(
            parallel_exec, "_worker_run_shard", _crash_once_per_shard
        )
        result = run_campaign(_spec(max_retries=2), workers=2)
        # Every shard crashed exactly once, then succeeded on the retry
        # pool, so exactly one backoff wait happened: the base 1.0s.
        assert sleeps == [1.0]
        assert all(
            (tmp_path / f"crashed-{index}").exists() for index in range(4)
        )
        assert all(_run_count(tmp_path, index) == 1 for index in range(4))
        # The recovered run is bit-identical to the uncrashed baseline.
        assert result.edges == baseline.edges
        assert result.transactions_sent == baseline.transactions_sent
        assert result.failures == baseline.failures
        assert str(result.score) == str(baseline.score)

    def test_backoff_schedule_is_deterministic(self, monkeypatch, sleeps):
        """max_retries=2 with permanently crashing workers waits exactly
        [base, base*factor] = [1.0, 2.0] before giving up on the pool."""
        monkeypatch.setattr(parallel_exec, "_worker_run_shard", _always_crash)
        run_campaign(_spec(max_retries=2), workers=2)
        assert sleeps == [1.0, 2.0]

    def test_inprocess_fallback_after_max_retries(self, monkeypatch, sleeps):
        baseline = run_campaign(_spec(), workers=1)
        monkeypatch.setattr(parallel_exec, "_worker_run_shard", _always_crash)
        result = run_campaign(_spec(max_retries=1), workers=2)
        # One retry round, then the driver's replica runs the shards
        # itself: the campaign completes with no shard_error failures.
        assert sleeps == [1.0]
        assert result.failures == baseline.failures
        assert result.edges == baseline.edges
        assert str(result.score) == str(baseline.score)

    def test_zero_retries_falls_back_immediately(self, monkeypatch, sleeps):
        baseline = run_campaign(_spec(), workers=1)
        monkeypatch.setattr(parallel_exec, "_worker_run_shard", _always_crash)
        result = run_campaign(_spec(), workers=2)  # default max_retries=0
        assert sleeps == []
        assert result.edges == baseline.edges


class TestResumeMidRetry:
    def test_driver_death_mid_retry_resumes_from_checkpoint(
        self, monkeypatch, tmp_path, sleeps
    ):
        """Driver dies after two shards of a retry round; the restarted
        campaign verifies the checkpoint and re-runs only the missing
        shards, landing on the bit-identical result."""
        baseline = run_campaign(_spec(), workers=1)
        checkpoint_path = tmp_path / "campaign.ckpt.json"
        markers = tmp_path / "markers"
        markers.mkdir()
        monkeypatch.setenv(_ENV_DIR, str(markers))
        monkeypatch.setattr(
            parallel_exec, "_worker_run_shard", _crash_once_per_shard
        )

        class DriverDied(Exception):
            pass

        recorded = []

        def die_after_two(index, _total, _result):
            recorded.append(index)
            if len(recorded) == 2:
                raise DriverDied()

        with pytest.raises(DriverDied):
            run_campaign(
                _spec(max_retries=1),
                workers=2,
                checkpoint_path=checkpoint_path,
                progress=die_after_two,
            )
        checkpoint = ParallelCheckpoint.load(checkpoint_path)
        assert sorted(checkpoint.completed) == sorted(recorded)
        assert len(checkpoint.completed) == 2

        resumed = run_campaign(
            _spec(max_retries=1),
            workers=2,
            checkpoint_path=checkpoint_path,
            resume=True,
        )
        # The checkpointed shards were not executed again (one run across
        # both incarnations).  The other shards may have executed in pool
        # workers before the driver died without being recorded — those
        # legitimately run again on resume.
        assert all(
            _run_count(markers, index) == 1 for index in checkpoint.completed
        )
        assert all(_run_count(markers, index) >= 1 for index in range(4))
        assert resumed.edges == baseline.edges
        assert resumed.transactions_sent == baseline.transactions_sent
        assert str(resumed.score) == str(baseline.score)
        assert resumed.failures == baseline.failures
