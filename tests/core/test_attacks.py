"""Tests for the executable Section 3 attacks."""


from repro.attacks.deter import (
    block_damage,
    flooding_amplification,
    run_deter_attack,
)
from repro.attacks.eclipse import compare_informed_vs_blind, run_eclipse_attack
from repro.attacks.partition import run_partition_attack, take_node_offline
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import ALETH, GETH
from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def sparse_network(seed=67):
    return quick_network(n_nodes=16, seed=seed, outbound_dials=3, max_peers=8)


class TestEclipse:
    def test_cutting_all_active_links_isolates_victim(self):
        network = sparse_network()
        victim = network.measurable_node_ids()[3]
        outcome = run_eclipse_attack(network, victim)
        assert outcome.isolated
        assert outcome.links_remaining == 0
        assert "ISOLATED" in outcome.summary()

    def test_partial_cut_leaves_victim_reachable(self):
        network = sparse_network()
        victim = network.measurable_node_ids()[3]
        neighbors = [
            p
            for p in network.node(victim).peer_ids
            if p not in network.supernode_ids
        ]
        outcome = run_eclipse_attack(network, victim, neighbors[:-1])
        assert not outcome.isolated
        assert outcome.links_remaining == 1

    def test_informed_attacker_beats_blind_attacker(self):
        victim = sparse_network().measurable_node_ids()[3]
        duel = compare_informed_vs_blind(sparse_network, victim)
        assert duel.informed.isolated
        # The blind attacker spends the same budget on routing-table
        # candidates — overwhelmingly inactive — and fails.
        assert not duel.blind.isolated
        assert duel.knowledge_paid_off


class TestDeter:
    def test_flood_evicts_pending_pool(self):
        network = sparse_network()
        prefill_mempools(network, median_price=gwei(1.0))
        victim = network.measurable_node_ids()[0]
        outcome = run_deter_attack(network, victim)
        assert outcome.eviction_ratio == 1.0
        assert outcome.pending_after == 0
        assert "DETER" in outcome.summary()

    def test_flood_costs_nothing_mineable(self):
        """The futures never become pending, so they can never be mined."""
        network = sparse_network()
        prefill_mempools(network, median_price=gwei(1.0))
        victim = network.measurable_node_ids()[0]
        run_deter_attack(network, victim)
        pool = network.node(victim).mempool
        assert pool.pending_count == 0
        assert pool.future_count > 0

    def test_miner_block_damage(self):
        network = sparse_network()
        prefill_mempools(network, median_price=gwei(1.0))
        victim = network.measurable_node_ids()[0]
        before = block_damage(network, victim)
        run_deter_attack(network, victim)
        after = block_damage(network, victim)
        assert before > 0
        assert after == 0  # the victim-miner has nothing left to mine

    def test_small_flood_partial_eviction(self):
        network = sparse_network()
        prefill_mempools(network, median_price=gwei(1.0))
        victim = network.measurable_node_ids()[0]
        capacity = network.node(victim).mempool.policy.capacity
        outcome = run_deter_attack(network, victim, flood_size=capacity // 4)
        assert 0 < outcome.eviction_ratio < 1.0


class TestFloodingAmplification:
    def _two_node_net(self, policy):
        network = Network(seed=68)
        network.create_node("entry", NodeConfig(policy=policy))
        network.create_node("peer", NodeConfig(policy=policy))
        network.connect("entry", "peer")
        network.run(1.0)  # drain handshakes
        return network

    def test_r0_client_amplifies_for_free(self):
        network = self._two_node_net(ALETH.scaled(64))
        outcome = flooding_amplification(network, "entry", rounds=20)
        assert outcome.replacements_accepted == 20
        assert outcome.transactions_propagated >= 20
        assert outcome.extra_cost_wei == 0

    def test_sane_client_rejects_free_replacements(self):
        network = self._two_node_net(GETH.scaled(64))
        outcome = flooding_amplification(network, "entry", rounds=20)
        assert outcome.replacements_accepted == 0
        # Only the original transaction propagates, no amplification.
        assert outcome.transactions_propagated == 1


class TestPartition:
    def _bridged_network(self):
        """Two rings joined by one bridge node."""
        network = Network(seed=69)
        config = NodeConfig(policy=GETH.scaled(64))
        left = [f"l{i}" for i in range(4)]
        right = [f"r{i}" for i in range(4)]
        for name in left + right + ["bridge"]:
            network.create_node(name, config)
        for group in (left, right):
            for i in range(len(group)):
                network.connect(group[i], group[(i + 1) % len(group)])
        network.connect("l0", "bridge")
        network.connect("bridge", "r0")
        return network

    def test_removing_bridge_partitions_propagation(self):
        network = self._bridged_network()
        outcome = run_partition_attack(network, "bridge")
        assert outcome.partitioned
        assert outcome.component_sizes == (4, 4)
        assert outcome.coverage == 0.5  # probe covers only one ring
        assert outcome.stranded_nodes == 4

    def test_removing_leaf_keeps_network_whole(self):
        network = self._bridged_network()
        outcome = run_partition_attack(network, "l2")
        assert not outcome.partitioned
        assert outcome.coverage == 1.0

    def test_take_node_offline_returns_lost_peers(self):
        network = self._bridged_network()
        lost = take_node_offline(network, "bridge")
        assert sorted(lost) == ["l0", "r0"]
        assert network.node("bridge").degree == 0
