"""Checkpoint atomic-write hygiene: fsync-before-rename + orphan cleanup.

A checkpoint is only worth its bytes if a crash at *any* instant leaves a
readable file. These tests simulate the two classic failure windows:

- kill between tmp write and rename → the old checkpoint must survive and
  the orphaned ``.tmp`` must be reaped on the next resume;
- power cut after rename → the rename must only ever expose fsynced bytes
  (fsync ordered strictly before the rename).
"""

import json
import os

import pytest

from repro.core.campaign import CampaignCheckpoint
from repro.core.parallel_exec import ParallelCheckpoint, ShardResult
from repro.errors import CheckpointError
from repro.io import atomic_write_text, cleanup_orphan_tmp


def _serial_checkpoint(completed=3):
    return CampaignCheckpoint(
        seed=7,
        targets=["a", "b", "c"],
        group_size=2,
        completed_iterations=completed,
    )


def _parallel_checkpoint():
    return ParallelCheckpoint(
        fingerprint="f" * 64,
        n_shards=2,
        completed={0: ShardResult(index=0, start=0, stop=1)},
    )


class TestFsyncBeforeRename:
    def test_tmp_file_is_fsynced_before_replace(self, tmp_path, monkeypatch):
        order = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            order.append("fsync")
            return real_fsync(fd)

        def spy_replace(src, dst):
            order.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        atomic_write_text(tmp_path / "ckpt.json", "{}\n")
        # File fsync strictly precedes the rename; the trailing fsync is
        # the directory entry.
        assert order[0] == "fsync"
        assert "replace" in order
        assert order.index("fsync") < order.index("replace")

    def test_serial_checkpoint_save_goes_through_atomic_writer(
        self, tmp_path, monkeypatch
    ):
        fsyncs = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (fsyncs.append(fd), real_fsync(fd))[1]
        )
        path = tmp_path / "campaign.ckpt.json"
        _serial_checkpoint().save(path)
        assert fsyncs, "checkpoint save must fsync before rename"
        assert not path.with_suffix(path.suffix + ".tmp").exists()

    def test_parallel_checkpoint_save_goes_through_atomic_writer(
        self, tmp_path, monkeypatch
    ):
        fsyncs = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (fsyncs.append(fd), real_fsync(fd))[1]
        )
        path = tmp_path / "parallel.ckpt.json"
        _parallel_checkpoint().save(path)
        assert fsyncs
        assert not path.with_suffix(path.suffix + ".tmp").exists()


class TestCrashSimulation:
    def test_kill_before_rename_preserves_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "campaign.ckpt.json"
        _serial_checkpoint(completed=3).save(path)

        # Crash in the rename window: tmp written, rename never happened.
        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            _serial_checkpoint(completed=4).save(path)
        monkeypatch.undo()

        # The orphan is on disk, the committed checkpoint is intact.
        tmp = path.with_suffix(path.suffix + ".tmp")
        assert tmp.exists()
        restored = CampaignCheckpoint.load(path)
        assert restored.completed_iterations == 3
        # load() reaped the orphan as part of resume hygiene.
        assert not tmp.exists()

    def test_parallel_load_reaps_orphan_tmp(self, tmp_path, monkeypatch):
        path = tmp_path / "parallel.ckpt.json"
        _parallel_checkpoint().save(path)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text("{torn partial json", encoding="utf-8")

        restored = ParallelCheckpoint.load(path)
        assert restored.n_shards == 2
        assert not tmp.exists()

    def test_orphan_cleanup_is_idempotent(self, tmp_path):
        path = tmp_path / "x.json"
        assert cleanup_orphan_tmp(path) is False
        path.with_suffix(path.suffix + ".tmp").write_text("junk")
        assert cleanup_orphan_tmp(path) is True
        assert cleanup_orphan_tmp(path) is False

    def test_torn_checkpoint_itself_still_errors_cleanly(self, tmp_path):
        # The atomic writer makes this unreachable in practice, but a
        # hand-truncated file must still fail typed, not with a stack of
        # JSON internals.
        path = tmp_path / "campaign.ckpt.json"
        path.write_text('{"format_version": 1, "seed":', encoding="utf-8")
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.load(path)

    def test_atomic_write_round_trips_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, json.dumps({"k": 1}) + "\n")
        assert json.loads(path.read_text()) == {"k": 1}
