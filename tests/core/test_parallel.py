"""Tests for the parallel measurement primitive (Section 5.3.1)."""

import pytest

from repro.core.config import MeasurementConfig
from repro.core.parallel import measure_par, measure_par_with_repeats
from repro.core.results import edge
from repro.core.schedule import build_schedule
from repro.errors import MeasurementError
from tests.conftest import pairs_of


def config_for(network):
    policy = network.node(network.measurable_node_ids()[0]).config.policy
    return MeasurementConfig.for_policy(policy)


class TestMeasurePar:
    def test_detects_true_edges_only(self, measured_network):
        network, supernode, truth = measured_network
        true_pairs = pairs_of(truth, connected=True, limit=4)
        false_pairs = pairs_of(truth, connected=False, limit=4)
        # Build a source-disjoint pair set: sources from one side only.
        pairs = []
        sources = set()
        sinks = set()
        for a, b in true_pairs + false_pairs:
            if a in sinks or b in sources:
                continue
            pairs.append((a, b))
            sources.add(a)
            sinks.add(b)
        report = measure_par(network, supernode, pairs, config_for(network))
        for outcome in report.outcomes:
            expected = truth.has_edge(outcome.source, outcome.sink)
            if outcome.detected:
                assert expected, (outcome.source, outcome.sink)

    def test_full_first_iteration_perfect_precision(self, measured_network):
        network, supernode, truth = measured_network
        targets = network.measurable_node_ids()
        iteration = build_schedule(targets, 3)[0]
        report = measure_par(
            network, supernode, iteration.edges, config_for(network)
        )
        for e in report.detected:
            a, b = tuple(e)
            assert truth.has_edge(a, b)

    def test_empty_pairs_is_noop(self, measured_network):
        network, supernode, _ = measured_network
        report = measure_par(network, supernode, [], config_for(network))
        assert report.edges_probed == 0
        assert report.detected == set()

    def test_overlapping_sources_and_sinks_rejected(self, measured_network):
        network, supernode, _ = measured_network
        ids = network.measurable_node_ids()
        with pytest.raises(MeasurementError):
            measure_par(
                network,
                supernode,
                [(ids[0], ids[1]), (ids[1], ids[2])],
                config_for(network),
            )

    def test_slot_budget_enforced(self, measured_network):
        network, supernode, _ = measured_network
        ids = network.measurable_node_ids()
        config = config_for(network)
        too_many = [(ids[0], ids[i]) for i in range(1, len(ids))]
        tight = MeasurementConfig(
            replace_bump=config.replace_bump,
            future_count=config.future_count,
            future_per_account=config.future_per_account,
            mempool_slots_budget=3,
        )
        with pytest.raises(MeasurementError):
            measure_par(network, supernode, too_many, tight)

    def test_transactions_sent_accounting(self, measured_network):
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=True, limit=1)
        report = measure_par(network, supernode, [(a, b)], config_for(network))
        # p1 to every peer + p2 batch + p3 batch at least.
        assert report.transactions_sent > supernode.degree

    def test_seed_and_flood_senders_tracked(self, measured_network):
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=True, limit=1)
        report = measure_par(network, supernode, [(a, b)], config_for(network))
        assert len(report.seed_senders) == 1
        assert len(report.flood_senders) >= 1


class TestRepeats:
    def test_union_improves_or_keeps_detection(self, measured_network):
        network, supernode, truth = measured_network
        targets = network.measurable_node_ids()
        iteration = build_schedule(targets, 3)[0]
        config = config_for(network)
        single = measure_par(network, supernode, iteration.edges, config)
        supernode.clear_observations()
        network.forget_known_transactions()
        from repro.netgen.workloads import refresh_mempools

        refresh_mempools(network)
        tripled = measure_par_with_repeats(
            network,
            supernode,
            iteration.edges,
            config.with_repeats(3),
            refresh=lambda: refresh_mempools(network),
        )
        assert tripled.detected >= single.detected
        # Precision still perfect after repeats.
        for e in tripled.detected:
            a, b = tuple(e)
            assert truth.has_edge(a, b)

    def test_outcomes_cover_all_pairs(self, measured_network):
        network, supernode, truth = measured_network
        targets = network.measurable_node_ids()
        iteration = build_schedule(targets, 3)[0]
        report = measure_par_with_repeats(
            network, supernode, iteration.edges, config_for(network).with_repeats(2)
        )
        probed = {(o.source, o.sink) for o in report.outcomes}
        assert probed == set(iteration.edges)

    def test_detected_edges_marked_in_outcomes(self, measured_network):
        network, supernode, truth = measured_network
        targets = network.measurable_node_ids()
        iteration = build_schedule(targets, 3)[0]
        report = measure_par_with_repeats(
            network, supernode, iteration.edges, config_for(network).with_repeats(2)
        )
        for outcome in report.outcomes:
            assert outcome.detected == (edge(outcome.source, outcome.sink) in report.detected)
