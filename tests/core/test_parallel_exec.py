"""Sharded campaign execution: determinism, serialization, resume."""

import json

import pytest

from repro.core.parallel_exec import (
    CampaignSpec,
    ParallelCheckpoint,
    ShardResult,
    ShardSpec,
    merge_obs_snapshots,
    run_campaign,
)
from repro.core.results import MeasurementFailure, edge
from repro.errors import CheckpointError, MeasurementError
from repro.netgen.ethereum import NetworkSpec
from repro.sim.faults import FaultPlan, LinkFaults
from repro.sim.rng import spawn_seed


def _spec(**overrides):
    defaults = dict(
        network=NetworkSpec(n_nodes=10, seed=7),
        prefill=False,
        n_shards=4,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestDeterminism:
    def test_pool_reproduces_serial_exactly(self):
        serial = run_campaign(_spec(), workers=1)
        pooled = run_campaign(_spec(), workers=2)
        assert pooled.edges == serial.edges
        assert str(pooled.score) == str(serial.score)
        assert pooled.duration == serial.duration
        assert pooled.transactions_sent == serial.transactions_sent
        assert pooled.failures == serial.failures

    def test_deterministic_under_faults(self):
        spec = _spec(
            network=NetworkSpec(n_nodes=10, seed=5),
            fault_plan=FaultPlan(loss_rate=0.05, churn_rate=0.02),
        )
        serial = run_campaign(spec, workers=1)
        pooled = run_campaign(spec, workers=2)
        assert pooled.edges == serial.edges
        assert pooled.duration == serial.duration

    def test_shard_seeds_are_spawn_keys(self):
        spec = _spec()
        shard = ShardSpec(campaign=spec, index=3, n_shards=4, start=0, stop=1)
        assert shard.seed == spawn_seed(spec.seed, "shard", 3)


class TestSpecSerialization:
    def test_round_trip_and_stable_fingerprint(self):
        spec = _spec(
            fault_plan=FaultPlan(
                loss_rate=0.1,
                link_overrides={
                    frozenset(("a", "b")): LinkFaults(loss_rate=0.5)
                },
            ),
            repeats=2,
            group_size=3,
        )
        payload = json.loads(json.dumps(spec.to_dict()))  # through JSON
        restored = CampaignSpec.from_dict(payload)
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()

    def test_different_campaigns_differ_in_fingerprint(self):
        assert _spec().fingerprint() != _spec(repeats=2).fingerprint()
        assert (
            _spec().fingerprint()
            != _spec(network=NetworkSpec(n_nodes=10, seed=8)).fingerprint()
        )

    def test_latency_model_rejected(self):
        from repro.sim.latency import ConstantLatency

        spec = _spec(
            network=NetworkSpec(
                n_nodes=10, seed=7, latency=ConstantLatency(0.05)
            )
        )
        with pytest.raises(MeasurementError):
            spec.to_dict()


class TestCheckpointResume:
    def test_resume_skips_completed_shards(self, tmp_path):
        path = tmp_path / "parallel.ckpt.json"
        spec = _spec()
        reference = run_campaign(spec, workers=1, checkpoint_path=path)

        checkpoint = ParallelCheckpoint.load(path)
        assert len(checkpoint.completed) == checkpoint.n_shards
        # Simulate a crash that lost the last two shards.
        for index in sorted(checkpoint.completed)[-2:]:
            del checkpoint.completed[index]
        checkpoint.save(path)

        resumed = run_campaign(
            spec, workers=1, checkpoint_path=path, resume=True
        )
        assert resumed.edges == reference.edges
        assert str(resumed.score) == str(reference.score)
        assert resumed.duration == reference.duration

    def test_resume_rejects_foreign_campaign(self, tmp_path):
        path = tmp_path / "parallel.ckpt.json"
        run_campaign(_spec(), workers=1, checkpoint_path=path)
        other = _spec(network=NetworkSpec(n_nodes=10, seed=99))
        with pytest.raises(CheckpointError):
            run_campaign(other, workers=1, checkpoint_path=path, resume=True)

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(CheckpointError):
            run_campaign(_spec(), workers=1, resume=True)

    def test_shard_result_round_trip(self):
        result = ShardResult(
            index=1,
            start=2,
            stop=4,
            edges={edge("a", "b")},
            transactions_sent=10,
            setup_failures=1,
            send_timeouts=2,
            failures=[MeasurementFailure(kind="unreachable", node="x")],
            sim_time=1.5,
            wall_time=0.1,
        )
        restored = ShardResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored == result


class TestObsMerge:
    def test_counters_sum_gauges_last_histograms_combine(self):
        a = {
            "metrics": [
                {"name": "c", "type": "counter", "labels": {}, "value": 2},
                {"name": "g", "type": "gauge", "labels": {}, "value": 5},
                {
                    "name": "h", "type": "histogram", "labels": {},
                    "count": 2, "sum": 3.0, "min": 1.0, "max": 2.0,
                    "p50": 1.5, "p90": 2.0, "p99": 2.0,
                },
            ],
            "events": {"recorded": 3, "retained": 3, "dropped": 0},
        }
        b = {
            "metrics": [
                {"name": "c", "type": "counter", "labels": {}, "value": 5},
                {"name": "g", "type": "gauge", "labels": {}, "value": 7},
                {
                    "name": "h", "type": "histogram", "labels": {},
                    "count": 1, "sum": 4.0, "min": 4.0, "max": 4.0,
                    "p50": 4.0, "p90": 4.0, "p99": 4.0,
                },
            ],
            "events": {"recorded": 1, "retained": 1, "dropped": 2},
        }
        merged = merge_obs_snapshots([a, b])
        by_name = {s["name"]: s for s in merged["metrics"]}
        assert by_name["c"]["value"] == 7
        assert by_name["g"]["value"] == 7
        assert by_name["h"]["count"] == 3
        assert by_name["h"]["sum"] == 7.0
        assert by_name["h"]["min"] == 1.0
        assert by_name["h"]["max"] == 4.0
        assert by_name["h"]["p50"] is None  # reservoirs are not mergeable
        assert merged["events"] == {
            "recorded": 4, "retained": 4, "dropped": 2,
        }
