"""Tests for result containers and precision/recall scoring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import (
    NetworkMeasurement,
    ValidationScore,
    edge,
    score_edges,
    union_results,
)


class TestScoring:
    def test_perfect_measurement(self):
        truth = {edge("a", "b"), edge("b", "c")}
        score = score_edges(truth, truth)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_false_positive_hurts_precision_only(self):
        truth = {edge("a", "b")}
        measured = {edge("a", "b"), edge("a", "c")}
        score = score_edges(measured, truth)
        assert score.precision == 0.5
        assert score.recall == 1.0

    def test_false_negative_hurts_recall_only(self):
        truth = {edge("a", "b"), edge("b", "c")}
        measured = {edge("a", "b")}
        score = score_edges(measured, truth)
        assert score.precision == 1.0
        assert score.recall == 0.5

    def test_empty_measurement_has_perfect_precision(self):
        score = score_edges(set(), {edge("a", "b")})
        assert score.precision == 1.0
        assert score.recall == 0.0

    def test_edge_is_undirected(self):
        assert edge("a", "b") == edge("b", "a")
        score = score_edges({edge("b", "a")}, {edge("a", "b")})
        assert score.true_positives == 1

    def test_f1_zero_when_nothing_matches(self):
        score = ValidationScore(0, 5, 5)
        assert score.f1 == 0.0

    @given(
        measured=st.sets(
            st.frozensets(st.sampled_from("abcdef"), min_size=2, max_size=2),
            max_size=10,
        ),
        truth=st.sets(
            st.frozensets(st.sampled_from("abcdef"), min_size=2, max_size=2),
            max_size=10,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_counts_partition_property(self, measured, truth):
        score = score_edges(measured, truth)
        assert score.true_positives + score.false_positives == len(measured)
        assert score.true_positives + score.false_negatives == len(truth)
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0


class TestNetworkMeasurement:
    def test_graph_includes_isolated_nodes(self):
        m = NetworkMeasurement(node_ids=["a", "b", "c"])
        m.add_edges({edge("a", "b")})
        graph = m.graph
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 1

    def test_validate_against_caches_score(self):
        m = NetworkMeasurement(node_ids=["a", "b"])
        m.add_edges({edge("a", "b")})
        score = m.validate_against({edge("a", "b")})
        assert m.score is score
        assert score.recall == 1.0

    def test_degree_histogram(self):
        m = NetworkMeasurement(node_ids=["a", "b", "c"])
        m.add_edges({edge("a", "b"), edge("a", "c")})
        assert m.degree_histogram() == {1: 2, 2: 1}

    def test_duration(self):
        m = NetworkMeasurement(node_ids=[], sim_time_start=5.0, sim_time_end=65.0)
        assert m.duration == 60.0

    def test_summary_mentions_validation(self):
        m = NetworkMeasurement(node_ids=["a", "b"])
        m.add_edges({edge("a", "b")})
        m.validate_against({edge("a", "b")})
        assert "precision=1.000" in m.summary()


class TestUnion:
    def test_union_of_repeats(self):
        r1 = {edge("a", "b")}
        r2 = {edge("b", "c")}
        assert union_results([r1, r2]) == {edge("a", "b"), edge("b", "c")}

    def test_union_of_nothing(self):
        assert union_results([]) == set()


class TestOffendingEdgeLists:
    def test_score_edges_fills_sorted_edge_lists(self):
        truth = {edge("a", "b"), edge("b", "c")}
        measured = {edge("a", "b"), edge("c", "d"), edge("a", "d")}
        score = score_edges(measured, truth)
        assert score.false_positive_edges == (("a", "d"), ("c", "d"))
        assert score.false_negative_edges == (("b", "c"),)
        assert score.false_positives == 2
        assert score.false_negatives == 1

    def test_str_reports_counts_only(self):
        truth = {edge("a", "b")}
        measured = {edge("a", "c")}
        score = score_edges(measured, truth)
        assert str(score) == (
            "precision=0.000 recall=0.000 (tp=0, fp=1, fn=1)"
        )

    def test_edge_lists_default_empty(self):
        score = ValidationScore(1, 2, 3)
        assert score.false_positive_edges == ()
        assert score.false_negative_edges == ()
