"""Tests for Byzantine-aware precision hardening (config, verdicts,
evidence, cross-validation and quarantine)."""

import pytest

from repro.core.campaign import TopoShot
from repro.core.config import MeasurementConfig
from repro.core.primitive import LinkProbeOutcome, ProbeReport
from repro.core.results import (
    CONFIDENCE_CROSS_VALIDATED,
    CONFIDENCE_HIGH,
    CONFIDENCE_QUARANTINED,
    CONFIDENCE_SUSPECT,
    EdgeEvidence,
    NetworkMeasurement,
    edge,
)
from repro.errors import MeasurementError
from repro.eth.behaviors import BehaviorMix
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools

# The adversary mix the robustness benchmark sweeps (heavy on the two
# false-positive mechanisms: spoofing relays and R=0 replacers).
ADVERSARIAL_MIX = BehaviorMix(
    spoof_relay=0.4,
    nonconforming_replacer=0.2,
    stale_client=0.2,
    censor=0.1,
    duplicate_spammer=0.1,
)


def probe(**overrides):
    defaults = dict(
        a="a",
        b="b",
        outcome=LinkProbeOutcome.CONNECTED,
        y=1,
        tx_c_hash="0xc",
        tx_a_hash="0xa",
        tx_b_hash="0xb",
        flood_confirmed=True,
        setup_a_ok=True,
        setup_b_ok=True,
        observed_at=10.0,
    )
    defaults.update(overrides)
    return ProbeReport(**defaults)


def measure(n_nodes, seed, frac, hardened, cross_validate=0):
    network = quick_network(n_nodes=n_nodes, seed=seed)
    prefill_mempools(network)
    if frac:
        network.install_behaviors(ADVERSARIAL_MIX.scaled(frac))
    shot = TopoShot.attach(network)
    if hardened and cross_validate:
        shot.config = shot.config.with_cross_validation(cross_validate)
    elif not hardened:
        shot.config = shot.config.with_hardening(False)
    return shot.measure_network()


class TestConfig:
    def test_hardened_is_the_default(self):
        assert MeasurementConfig().hardened
        assert MeasurementConfig().cross_validate == 0

    def test_with_cross_validation_defaults_k_to_one(self):
        config = MeasurementConfig().with_cross_validation(3)
        assert config.cross_validate == 3
        assert config.cross_validate_k == 1

    def test_invalid_cross_validation_refused(self):
        with pytest.raises(MeasurementError):
            MeasurementConfig(cross_validate=-1)
        with pytest.raises(MeasurementError):
            MeasurementConfig(cross_validate=2, cross_validate_k=3)
        with pytest.raises(MeasurementError):
            MeasurementConfig(cross_validate_k=0)


class TestProbeVerdicts:
    def test_clean_positive_is_confirmed_outright(self):
        report = probe()
        assert report.clean
        assert report.confirmed_direct

    def test_rpc_failure_kills_the_verdict(self):
        report = probe(rpc_confirmed=False)
        assert not report.clean
        assert not report.confirmed_direct

    def test_negative_is_never_confirmed(self):
        report = probe(outcome=LinkProbeOutcome.NOT_CONNECTED)
        assert not report.confirmed_direct

    def test_extra_observers_break_clean_but_race_can_confirm(self):
        winner = probe(
            extra_observers=("x",), extra_observed_at=11.0, observed_at=10.0
        )
        assert not winner.clean
        assert winner.confirmed_direct  # sink demonstrated first
        loser = probe(
            extra_observers=("x",), extra_observed_at=9.0, observed_at=10.0
        )
        assert not loser.confirmed_direct  # a third party beat the sink

    def test_race_needs_both_timestamps(self):
        report = probe(extra_observers=("x",), extra_observed_at=None)
        assert not report.confirmed_direct


class TestHonestEquivalence:
    def test_hardening_never_changes_an_honest_verdict(self):
        hardened = measure(12, seed=7, frac=0.0, hardened=True)
        unhardened = measure(12, seed=7, frac=0.0, hardened=False)
        assert hardened.edges == unhardened.edges
        assert str(hardened.score) == str(unhardened.score)
        # On an honest network every verdict stays high-confidence.
        assert set(hardened.edge_confidence.values()) == {CONFIDENCE_HIGH}
        assert not hardened.quarantined
        assert not hardened.suspect_nodes
        # Evidence is collected only on the hardened path.
        assert set(hardened.evidence) == hardened.edges
        assert all(item.clean for item in hardened.evidence.values())
        assert not unhardened.evidence


class TestAdversarialHardening:
    @pytest.fixture(scope="class")
    def byzantine_pair(self):
        unhardened = measure(14, seed=5, frac=0.2, hardened=False)
        hardened = measure(
            14, seed=5, frac=0.2, hardened=True, cross_validate=3
        )
        return unhardened, hardened

    def test_byzantine_mix_produces_false_positives_unhardened(
        self, byzantine_pair
    ):
        unhardened, _ = byzantine_pair
        assert unhardened.score.false_positives > 0
        assert unhardened.score.false_positive_edges  # diagnosable

    def test_cross_validation_recovers_precision(self, byzantine_pair):
        unhardened, hardened = byzantine_pair
        assert hardened.score.precision > unhardened.score.precision
        assert hardened.score.false_positives == 0

    def test_quarantine_and_labels_are_populated(self, byzantine_pair):
        _, hardened = byzantine_pair
        assert hardened.quarantined
        assert not hardened.quarantined & hardened.edges
        allowed = {
            CONFIDENCE_HIGH,
            CONFIDENCE_CROSS_VALIDATED,
            CONFIDENCE_SUSPECT,
            CONFIDENCE_QUARANTINED,
        }
        assert set(hardened.edge_confidence.values()) <= allowed
        for quarantined_edge in hardened.quarantined:
            assert (
                hardened.edge_confidence[quarantined_edge]
                == CONFIDENCE_QUARANTINED
            )
        assert hardened.suspect_nodes <= set(hardened.node_ids)

    def test_summary_reports_the_quarantine(self, byzantine_pair):
        _, hardened = byzantine_pair
        assert "quarantined" in hardened.summary()

    def test_summary_names_suspect_nodes_when_present(self):
        m = NetworkMeasurement(node_ids=["a", "b"])
        m.suspect_nodes.add("b")
        assert "suspect nodes  : b" in m.summary()

    def test_suspects_without_budget_are_kept_but_downgraded(self):
        downgraded = measure(14, seed=5, frac=0.2, hardened=True)
        # No cross-validation budget: nothing is quarantined, suspect
        # edges keep their place with a 'suspect' label.
        assert not downgraded.quarantined
        assert CONFIDENCE_SUSPECT in set(downgraded.edge_confidence.values())


class TestMeasurementContainers:
    def test_summary_lines_for_clean_measurement(self):
        m = NetworkMeasurement(node_ids=["a", "b"])
        m.add_edges({edge("a", "b")})
        assert "quarantined" not in m.summary()

    def test_evidence_round_trip_dict(self):
        item = EdgeEvidence(
            source="a",
            sink="b",
            tx_hash="0xa",
            observed_at=12.5,
            kind="direct",
            rpc_confirmed=True,
            extra_observers=("c",),
            iteration=2,
        )
        assert EdgeEvidence.from_dict(item.to_dict()) == item
        assert item.edge == edge("a", "b")
        assert not item.clean  # an extra observer dirties the evidence
