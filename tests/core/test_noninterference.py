"""Tests for the non-interference extension (Section 6.3, Appendix C)."""

import pytest

from repro.core.noninterference import (
    NonInterferenceMonitor,
    check_conditions,
    compare_worlds,
)
from repro.eth.chain import Chain
from repro.eth.transaction import INTRINSIC_GAS, Transaction


def full_block_txs(wallet, factory, count, price):
    return [
        factory.transfer(wallet.fresh_account(), gas_price=price)
        for _ in range(count)
    ]


@pytest.fixture
def small_chain():
    return Chain(gas_limit=3 * INTRINSIC_GAS)


class TestConditions:
    def test_v1_v2_hold_on_full_expensive_blocks(self, small_chain, wallet, factory):
        for t in (1.0, 2.0):
            small_chain.append("m", t, full_block_txs(wallet, factory, 3, 500))
        report = check_conditions(small_chain, 0.0, 2.0, y0=100, expiry=10.0)
        assert report.non_interfering
        assert report.blocks_checked == 2
        assert "VERIFIED" in report.summary()

    def test_v1_fails_on_partial_block(self, small_chain, wallet, factory):
        small_chain.append("m", 1.0, full_block_txs(wallet, factory, 2, 500))
        report = check_conditions(small_chain, 0.0, 2.0, y0=100, expiry=10.0)
        assert not report.v1_full_blocks
        assert not report.non_interfering
        assert report.violating_blocks_v1 == (1,)

    def test_v2_fails_when_cheap_tx_included(self, small_chain, wallet, factory):
        txs = full_block_txs(wallet, factory, 2, 500)
        txs.append(factory.transfer(wallet.fresh_account(), gas_price=50))
        small_chain.append("m", 1.0, txs)
        report = check_conditions(small_chain, 0.0, 2.0, y0=100, expiry=10.0)
        assert report.v1_full_blocks
        assert not report.v2_prices_above_y0
        assert report.violating_blocks_v2 == (1,)

    def test_window_includes_expiry_tail(self, small_chain, wallet, factory):
        # Block at t=11 is inside [t1, t2 + e] = [0, 2 + 10].
        small_chain.append("m", 11.0, full_block_txs(wallet, factory, 2, 500))
        report = check_conditions(small_chain, 0.0, 2.0, y0=100, expiry=10.0)
        assert report.blocks_checked == 1
        assert not report.v1_full_blocks

    def test_blocks_outside_window_ignored(self, small_chain, wallet, factory):
        small_chain.append("m", 50.0, full_block_txs(wallet, factory, 1, 10))
        report = check_conditions(small_chain, 0.0, 2.0, y0=100, expiry=10.0)
        assert report.blocks_checked == 0
        assert report.non_interfering


class TestMonitor:
    def test_monitor_lifecycle(self, small_chain, wallet, factory):
        monitor = NonInterferenceMonitor(small_chain, y0=100, expiry=10.0)
        monitor.start(0.0)
        small_chain.append("m", 1.0, full_block_txs(wallet, factory, 3, 500))
        monitor.stop(2.0)
        assert monitor.verify().non_interfering

    def test_verify_before_start_raises(self, small_chain):
        from repro.errors import MeasurementError

        monitor = NonInterferenceMonitor(small_chain, y0=100)
        with pytest.raises(MeasurementError):
            monitor.verify()


class TestWorldComparison:
    def test_identical_worlds(self, wallet, factory):
        chain_a = Chain(gas_limit=3 * INTRINSIC_GAS)
        chain_b = Chain(gas_limit=3 * INTRINSIC_GAS)
        txs = full_block_txs(wallet, factory, 3, 500)
        chain_a.append("m", 1.0, txs)
        chain_b.append("m", 1.0, txs)
        comparison = compare_worlds(chain_a.blocks, chain_b.blocks)
        assert comparison.identical
        assert "identical" in comparison.summary()

    def test_divergence_reported(self, wallet, factory):
        chain_a = Chain(gas_limit=3 * INTRINSIC_GAS)
        chain_b = Chain(gas_limit=3 * INTRINSIC_GAS)
        txs = full_block_txs(wallet, factory, 3, 500)
        chain_a.append("m", 1.0, txs)
        chain_b.append("m", 1.0, txs[:2])
        comparison = compare_worlds(chain_a.blocks, chain_b.blocks)
        assert not comparison.identical
        assert comparison.first_divergence == 1
        assert comparison.extra_in_measured == 1

    def test_measurement_senders_ignored(self, wallet, factory):
        chain_a = Chain(gas_limit=3 * INTRINSIC_GAS)
        chain_b = Chain(gas_limit=3 * INTRINSIC_GAS)
        shared = full_block_txs(wallet, factory, 2, 500)
        probe = factory.transfer(wallet.fresh_account(), gas_price=600)
        chain_a.append("m", 1.0, shared + [probe])
        chain_b.append("m", 1.0, shared)
        comparison = compare_worlds(
            chain_a.blocks, chain_b.blocks, ignore_senders={probe.sender}
        )
        assert comparison.identical

    def test_length_mismatch_not_identical(self, wallet, factory):
        chain_a = Chain(gas_limit=3 * INTRINSIC_GAS)
        chain_b = Chain(gas_limit=3 * INTRINSIC_GAS)
        chain_a.append("m", 1.0, [])
        comparison = compare_worlds(chain_a.blocks, chain_b.blocks)
        assert not comparison.identical
