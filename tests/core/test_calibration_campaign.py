"""Tests for per-target flood-size calibration inside campaigns (§5.2.3)."""

import pytest

from repro.core.campaign import TopoShot
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import gwei
from repro.netgen.workloads import prefill_mempools


@pytest.fixture
def network_with_big_pool_node():
    """Six nodes; 'big' runs a 4x mempool that defeats the default flood."""
    network = Network(seed=51)
    base = GETH.scaled(128)
    ids = []
    for i in range(5):
        ids.append(f"n{i}")
        network.create_node(f"n{i}", NodeConfig(policy=base))
    network.create_node("big", NodeConfig(policy=base.with_capacity(512)))
    ids.append("big")
    for i in range(len(ids)):
        network.connect(ids[i], ids[(i + 1) % len(ids)])
    network.connect("n0", "n3")
    network.connect("big", "n1")
    prefill_mempools(network, median_price=gwei(1.0))
    return network


class TestZOverrides:
    def test_without_override_big_node_links_missed(
        self, network_with_big_pool_node
    ):
        network = network_with_big_pool_node
        shot = TopoShot.attach(network)
        measurement = shot.measure_network(preprocess=False)
        missed = {
            frozenset(edge)
            for edge in network.ground_truth_edges()
            if "big" in edge
        } - measurement.edges
        assert missed  # default Z cannot flush the 4x pool

    def test_override_recovers_big_node_links(self, network_with_big_pool_node):
        network = network_with_big_pool_node
        shot = TopoShot.attach(network)
        shot.set_z_override("big", 700)
        measurement = shot.measure_network(preprocess=False)
        big_edges = {
            frozenset(edge)
            for edge in network.ground_truth_edges()
            if "big" in edge
        }
        assert big_edges <= measurement.edges
        assert measurement.score.precision == 1.0

    def test_calibrate_target_discovers_and_stores_override(
        self, network_with_big_pool_node
    ):
        network = network_with_big_pool_node
        shot = TopoShot.attach(network)
        found = shot.calibrate_target("big", "n1", z_values=[128, 400, 700])
        assert found is not None
        assert found > shot.config.future_count
        assert shot.z_overrides["big"] == found

    def test_override_below_default_is_ignored(self, network_with_big_pool_node):
        network = network_with_big_pool_node
        shot = TopoShot.attach(network)
        shot.set_z_override("n0", 16)
        from repro.core.schedule import build_schedule

        iteration = build_schedule(network.measurable_node_ids(), 2)[0]
        assert shot._config_for_iteration(iteration).future_count == (
            shot.config.future_count
        )
