"""Property test: slicing a schedule into shards loses and reorders nothing.

The sharded executor runs ``build_schedule``'s iterations in ``[start,
stop)`` slices from :func:`build_shard_plan`. For the merged measurement to
equal the unsharded one, the concatenation of the slices must be exactly
the original schedule — every iteration once, in order, for any shard
count.
"""

import pytest

from repro.core.parallel_exec import build_shard_plan
from repro.core.schedule import build_schedule


def _nodes(n):
    return [f"node-{i}" for i in range(n)]


@pytest.mark.parametrize("n", [4, 7, 12, 25, 40])
@pytest.mark.parametrize("k", [1, 2, 3, 5, 10])
@pytest.mark.parametrize("s", [1, 2, 3, 5, 8, 64])
def test_sliced_schedule_remerges_to_unsharded(n, k, s):
    schedule = build_schedule(_nodes(n), k)
    plan = build_shard_plan(len(schedule), s)
    merged = [
        iteration
        for start, stop in plan
        for iteration in schedule[start:stop]
    ]
    assert merged == schedule


@pytest.mark.parametrize("n_iterations", [0, 1, 5, 8, 17])
@pytest.mark.parametrize("s", [None, 1, 3, 8, 100])
def test_shard_plan_partitions_the_iteration_range(n_iterations, s):
    plan = build_shard_plan(n_iterations, s)
    if n_iterations == 0:
        assert plan == []
        return
    # Contiguous, complete, non-overlapping, and never an empty shard.
    assert plan[0][0] == 0
    assert plan[-1][1] == n_iterations
    for (_, stop), (start, _) in zip(plan, plan[1:]):
        assert stop == start
    assert all(stop > start for start, stop in plan)
    # Balanced: sizes differ by at most one.
    sizes = [stop - start for start, stop in plan]
    assert max(sizes) - min(sizes) <= 1
    # Never more shards than iterations; default is capped at 8.
    assert len(plan) <= n_iterations
    if s is None:
        assert len(plan) == min(n_iterations, 8)


def test_shard_plan_is_independent_of_worker_count():
    # The plan is a function of the campaign alone; there is no worker
    # parameter to vary, which is itself the property — this guards
    # against someone adding one.
    import inspect

    from repro.core import parallel_exec

    signature = inspect.signature(parallel_exec.build_shard_plan)
    assert list(signature.parameters) == ["n_iterations", "n_shards"]
