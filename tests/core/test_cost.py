"""Tests for cost accounting and mainnet extrapolation (Sections 6.3/6.4)."""

import pytest

from repro.core.cost import (
    CampaignCostRow,
    CostLedger,
    MainnetEstimate,
    estimate_from_measured_pair_cost,
    paper_mainnet_estimate,
    summarize_campaigns,
    wei_to_ether,
)
from repro.eth.chain import Chain
from repro.eth.transaction import INTRINSIC_GAS, gwei


class TestLedger:
    def test_tracks_included_fees_only(self, wallet, factory):
        chain = Chain()
        ledger = CostLedger(chain)
        mined = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        unmined = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        ledger.register("txC", [mined.sender, unmined.sender])
        chain.append("m", 1.0, [mined])
        assert ledger.spent_wei() == gwei(1) * INTRINSIC_GAS
        assert ledger.included_count() == 1

    def test_category_separation(self, wallet, factory):
        chain = Chain()
        ledger = CostLedger(chain)
        seed = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        flood = factory.future(wallet.fresh_account(), gas_price=gwei(2))
        ledger.register("seeds", [seed.sender])
        ledger.register("floods", [flood.sender])
        chain.append("m", 1.0, [seed])
        assert ledger.spent_wei("seeds") > 0
        assert ledger.spent_wei("floods") == 0  # futures are never mined

    def test_empty_ledger(self):
        ledger = CostLedger(Chain())
        assert ledger.spent_wei() == 0
        assert ledger.included_count() == 0

    def test_spent_ether_conversion(self, wallet, factory):
        chain = Chain()
        ledger = CostLedger(chain)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        ledger.register("txC", [tx.sender])
        chain.append("m", 1.0, [tx])
        assert ledger.spent_ether() == pytest.approx(
            wei_to_ether(gwei(1) * INTRINSIC_GAS)
        )


class TestMainnetEstimate:
    def test_paper_figures_reproduced(self):
        """Section 6.3: ~8000 nodes -> ~22.8k ETH -> > 60 M USD."""
        estimate = paper_mainnet_estimate()
        assert estimate.pairs == 8000 * 7999 // 2
        assert estimate.total_ether == pytest.approx(22_717, rel=0.01)
        assert estimate.total_usd > 60e6

    def test_pairs_quadratic(self):
        small = MainnetEstimate(100, 1e-4, 2000.0)
        assert small.pairs == 4950

    def test_estimate_from_ledger(self, wallet, factory):
        chain = Chain()
        ledger = CostLedger(chain)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        ledger.register("txC", [tx.sender])
        chain.append("m", 1.0, [tx])
        estimate = estimate_from_measured_pair_cost(
            ledger, pairs_measured=10, n_nodes=100, eth_price_usd=2000.0
        )
        per_pair = ledger.spent_ether() / 10
        assert estimate.total_ether == pytest.approx(per_pair * 4950)

    def test_zero_pairs_rejected(self):
        with pytest.raises(ValueError):
            estimate_from_measured_pair_cost(CostLedger(Chain()), 0)

    def test_summary_readable(self):
        text = paper_mainnet_estimate().summary()
        assert "8000 nodes" in text
        assert "M USD" in text


class TestTable7Rendering:
    def test_summary_table(self):
        rows = [
            CampaignCostRow("Ropsten", 588, 0.067, 12.0),
            CampaignCostRow("Rinkeby", 446, 2.10, 10.0),
        ]
        text = summarize_campaigns(rows)
        assert "Ropsten" in text
        assert "0.06700" in text
        assert text.count("\n") >= 3
