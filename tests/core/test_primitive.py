"""Tests for the serial measureOneLink primitive (Section 5.2).

These run on a 14-node Ethereum-like network with pre-filled pools and
check the paper's headline guarantees: perfect precision on non-links,
detection of true links, correct mempool states at each step, and the
known failure modes (larger pools, custom bumps, silent nodes).
"""

import pytest

from repro.core.config import MeasurementConfig
from repro.core.gas_estimator import estimate_y
from repro.core.primitive import (
    LinkProbeOutcome,
    build_future_flood,
    measure_link_with_repeats,
    measure_one_link,
    rebid,
)
from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory, gwei
from repro.netgen.workloads import prefill_mempools
from tests.conftest import pairs_of


class TestDetection:
    def test_true_links_detected(self, measured_network):
        network, supernode, truth = measured_network
        for a, b in pairs_of(truth, connected=True, limit=5):
            report = measure_one_link(network, supernode, a, b)
            assert report.connected, (a, b, report.outcome)
            supernode.clear_observations()
            network.forget_known_transactions()

    def test_non_links_never_detected(self, measured_network):
        """The 100% precision guarantee."""
        network, supernode, truth = measured_network
        for a, b in pairs_of(truth, connected=False, limit=5):
            report = measure_one_link(network, supernode, a, b)
            assert not report.connected, (a, b)
            assert report.outcome is LinkProbeOutcome.NOT_CONNECTED
            supernode.clear_observations()
            network.forget_known_transactions()

    def test_detection_is_direction_symmetric(self, measured_network):
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=True, limit=1)
        assert measure_one_link(network, supernode, a, b).connected
        supernode.clear_observations()
        network.forget_known_transactions()
        assert measure_one_link(network, supernode, b, a).connected

    def test_self_measurement_rejected(self, measured_network):
        network, supernode, _ = measured_network
        with pytest.raises(ValueError):
            measure_one_link(network, supernode, "testnet-0001", "testnet-0001")

    def test_supernode_cannot_be_a_target(self, measured_network):
        network, supernode, _ = measured_network
        with pytest.raises(ValueError):
            measure_one_link(network, supernode, supernode.id, "testnet-0001")
        with pytest.raises(ValueError):
            measure_one_link(network, supernode, "testnet-0001", supernode.id)


class TestProtocolStates:
    """Step-by-step invariants from the correctness analysis (5.2.1)."""

    def test_txc_floods_and_gets_evicted_on_targets(self, measured_network):
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=True, limit=1)
        report = measure_one_link(network, supernode, a, b)
        assert report.flood_confirmed  # txC reached B before Step 2
        # After the run, txC must be gone from both targets...
        assert report.tx_c_hash not in network.node(a).mempool
        assert report.tx_c_hash not in network.node(b).mempool
        # ...but still present on some third-party node C.
        others = [
            nid
            for nid in network.measurable_node_ids()
            if nid not in (a, b)
        ]
        assert any(
            report.tx_c_hash in network.node(nid).mempool for nid in others
        )

    def test_txa_replaces_txb_on_connected_sink(self, measured_network):
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=True, limit=1)
        report = measure_one_link(network, supernode, a, b)
        sink_pool = network.node(b).mempool
        assert report.tx_a_hash in sink_pool
        assert report.tx_b_hash not in sink_pool

    def test_txb_survives_on_unconnected_sink(self, measured_network):
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=False, limit=1)
        report = measure_one_link(network, supernode, a, b)
        sink_pool = network.node(b).mempool
        assert report.tx_b_hash in sink_pool
        assert report.tx_a_hash not in sink_pool

    def test_txa_never_lands_on_third_parties(self, measured_network):
        """Isolation: txA exists only on A (and B when connected)."""
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=True, limit=1)
        report = measure_one_link(network, supernode, a, b)
        for nid in network.measurable_node_ids():
            if nid in (a, b):
                continue
            assert report.tx_a_hash not in network.node(nid).mempool, nid

    def test_flood_futures_never_propagate(self, measured_network):
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=True, limit=1)
        config = MeasurementConfig.for_policy(
            network.node(a).config.policy
        )
        wallet = Wallet("flood-check")
        factory = TransactionFactory()
        y = estimate_y(supernode, config)
        flood = build_future_flood(wallet, factory, config, y)
        supernode.send_transactions(a, flood)
        network.run(5.0)
        flood_hashes = {tx.hash for tx in flood}
        for nid in network.measurable_node_ids():
            if nid == a:
                continue
            pool = network.node(nid).mempool
            assert not any(h in pool for h in flood_hashes), nid


class TestFailureModes:
    """The recall culprits of Section 6.1, reproduced deliberately."""

    def _two_node_net(self, b_policy):
        network = Network(seed=21)
        default = NodeConfig(policy=GETH.scaled(128))
        network.create_node("a", default)
        network.create_node("b", NodeConfig(policy=b_policy))
        network.create_node("c", default)
        network.connect("a", "b")
        network.connect("a", "c")
        network.connect("b", "c")
        prefill_mempools(network, median_price=gwei(1.0))
        supernode = Supernode.join(network)
        return network, supernode

    def test_oversized_mempool_causes_false_negative(self):
        """Custom L >> Z: the flood cannot evict txC (Figure 7's cliff)."""
        network, supernode = self._two_node_net(GETH.scaled(128).with_capacity(512))
        config = MeasurementConfig.for_policy(GETH.scaled(128))
        report = measure_one_link(network, supernode, "a", "b", config)
        assert not report.connected
        assert report.outcome is LinkProbeOutcome.SETUP_FAILED_B

    def test_larger_flood_recovers_the_link(self):
        """...and a big enough Z recovers it (the Fig 4a mechanism)."""
        network, supernode = self._two_node_net(GETH.scaled(128).with_capacity(512))
        config = MeasurementConfig.for_policy(GETH.scaled(128)).with_future_count(
            700
        )
        report = measure_one_link(network, supernode, "a", "b", config)
        assert report.connected

    def test_custom_replacement_bump_causes_false_negative(self):
        """Custom R=25%: txA's 10.5% bump cannot replace txB on the sink."""
        network, supernode = self._two_node_net(GETH.scaled(128).with_bump(0.25))
        config = MeasurementConfig.for_policy(GETH.scaled(128))
        report = measure_one_link(network, supernode, "a", "b", config)
        assert not report.connected

    def test_non_relaying_source_causes_false_negative(self):
        network = Network(seed=22)
        default = NodeConfig(policy=GETH.scaled(128))
        network.create_node("a", NodeConfig(
            policy=GETH.scaled(128), relays_transactions=False
        ))
        network.create_node("b", default)
        network.create_node("c", default)
        network.connect("a", "b")
        network.connect("a", "c")
        network.connect("b", "c")
        prefill_mempools(network, median_price=gwei(1.0))
        supernode = Supernode.join(network)
        report = measure_one_link(network, supernode, "a", "b")
        assert not report.connected


class TestRepeats:
    def test_repeats_stop_early_on_positive(self, measured_network):
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=True, limit=1)
        config = MeasurementConfig.for_policy(
            network.node(a).config.policy
        ).with_repeats(3)
        reports = measure_link_with_repeats(network, supernode, a, b, config)
        assert len(reports) == 1  # first attempt already positive

    def test_repeats_exhaust_on_negative(self, measured_network):
        network, supernode, truth = measured_network
        (a, b), = pairs_of(truth, connected=False, limit=1)
        config = MeasurementConfig.for_policy(
            network.node(a).config.policy
        ).with_repeats(3)
        refreshes = []
        reports = measure_link_with_repeats(
            network, supernode, a, b, config, refresh=lambda: refreshes.append(1)
        )
        assert len(reports) == 3
        assert not any(r.connected for r in reports)
        assert len(refreshes) == 3


class TestRebid:
    def test_rebid_keeps_identity(self, factory, wallet):
        original = factory.transfer(wallet.fresh_account(), gas_price=1000)
        cheaper = rebid(factory, original, 950)
        assert cheaper.sender == original.sender
        assert cheaper.nonce == original.nonce
        assert cheaper.gas_price == 950
        assert cheaper.hash != original.hash
