"""Tests for longitudinal topology monitoring and churn detection."""

import pytest

from repro.core.campaign import TopoShot
from repro.core.monitor import TopologyMonitor, rewire_random_links
from repro.errors import MeasurementError
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


@pytest.fixture
def monitored():
    network = quick_network(n_nodes=14, seed=57)
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_repeats(2)
    return network, shot


class TestSnapshots:
    def test_stable_network_zero_churn(self, monitored):
        network, shot = monitored
        monitor = TopologyMonitor(shot)
        monitor.run_rounds(2)
        report = monitor.churn_between(0, 1)
        assert report.churn_rate == 0.0
        assert report.jaccard_similarity == 1.0
        assert monitor.persistent_edges() == monitor.snapshots[0].edges

    def test_rewire_injects_detectable_churn(self, monitored):
        network, shot = monitored
        injected = {}

        def churn():
            removed, added = rewire_random_links(network, fraction=0.15)
            injected["removed"] = removed
            injected["added"] = added

        monitor = TopologyMonitor(shot, between_rounds=churn)
        monitor.run_rounds(2)
        report = monitor.churn_between(0, 1)
        # Every removed link detected as gone (precision is exact, so a
        # measured-then-vanished edge can only be real churn)...
        detected_removed = report.removed & injected["removed"]
        assert len(detected_removed) >= len(injected["removed"]) * 0.7
        # ...and most added links picked up (bounded by recall).
        detected_added = report.added & injected["added"]
        assert len(detected_added) >= len(injected["added"]) * 0.7
        assert report.churn_rate > 0
        assert "+{}".format(len(report.added)) in report.summary()

    def test_churn_series_and_negative_indices(self, monitored):
        network, shot = monitored
        monitor = TopologyMonitor(
            shot, between_rounds=lambda: rewire_random_links(network, 0.1)
        )
        monitor.run_rounds(3)
        series = monitor.churn_series()
        assert len(series) == 2
        last = monitor.churn_between(-2, -1)
        assert last.to_time >= last.from_time

    def test_zero_rounds_rejected(self, monitored):
        _, shot = monitored
        with pytest.raises(MeasurementError):
            TopologyMonitor(shot).run_rounds(0)

    def test_persistent_edges_shrink_under_churn(self, monitored):
        network, shot = monitored
        monitor = TopologyMonitor(
            shot, between_rounds=lambda: rewire_random_links(network, 0.3)
        )
        monitor.run_rounds(3)
        persistent = monitor.persistent_edges()
        for snapshot in monitor.snapshots:
            assert persistent <= snapshot.edges
        assert len(persistent) < len(monitor.snapshots[0].edges)


class TestMonitorObservability:
    def test_snapshot_and_churn_metrics(self):
        from repro.obs import Observability
        from repro.obs import wiring

        network = quick_network(n_nodes=14, seed=57)
        prefill_mempools(network)
        obs = Observability()
        shot = TopoShot.attach(network, obs=obs)
        shot.config = shot.config.with_repeats(2)
        monitor = TopologyMonitor(
            shot, between_rounds=lambda: rewire_random_links(network, 0.1)
        )
        monitor.run_rounds(2)
        samples = {s["name"]: s for s in obs.metrics.snapshot()}
        assert samples[wiring.MONITOR_SNAPSHOTS]["value"] == 2
        assert samples[wiring.MONITOR_LAST_EDGES]["value"] == len(
            monitor.snapshots[-1].edges
        )
        report = monitor.churn_between(-2, -1)
        assert samples[wiring.MONITOR_LAST_CHURN]["value"] == report.churn_rate
        assert samples[wiring.MONITOR_EDGES_ADDED]["value"] == len(report.added)
        assert samples[wiring.MONITOR_EDGES_REMOVED]["value"] == len(
            report.removed
        )
        kinds = {record[1] for record in obs.events}
        assert "monitor.snapshot" in kinds
        assert "monitor.churn" in kinds


class TestRewire:
    def test_rewire_preserves_link_count(self):
        # Sparse network: plenty of free pairs to dial.
        network = quick_network(
            n_nodes=20, seed=58, outbound_dials=3, max_peers=8
        )
        before = len(network.ground_truth_edges())
        removed, added = rewire_random_links(network, fraction=0.2)
        after = len(network.ground_truth_edges())
        assert len(removed) == len(added)
        assert removed.isdisjoint(added)
        assert after == before

    def test_zero_fraction_noop(self):
        network = quick_network(n_nodes=10, seed=59)
        before = network.ground_truth_edges()
        removed, added = rewire_random_links(network, fraction=0.0)
        assert removed == added == set()
        assert network.ground_truth_edges() == before

    def test_bad_fraction_rejected(self):
        network = quick_network(n_nodes=8, seed=60)
        with pytest.raises(MeasurementError):
            rewire_random_links(network, fraction=1.5)


class TestChurnConventions:
    def test_empty_vs_empty_is_identical(self):
        from repro.core.monitor import ChurnReport

        report = ChurnReport(
            from_time=0.0, to_time=1.0, added=set(), removed=set(), stable=set()
        )
        assert report.jaccard_similarity == 1.0
        assert report.churn_rate == 0.0

    def test_edge_appearing_raises_churn_above_empty_baseline(self):
        from repro.core.monitor import ChurnReport
        from repro.core.results import edge

        report = ChurnReport(
            from_time=0.0,
            to_time=1.0,
            added={edge("a", "b")},
            removed=set(),
            stable=set(),
        )
        assert report.jaccard_similarity == 0.0
        assert report.churn_rate == 1.0
