"""Tests for measurement/graph persistence."""

import json

import networkx as nx
import pytest

from repro.core.results import NetworkMeasurement, ValidationScore, edge
from repro.io import (
    SerializationError,
    export_degree_csv,
    export_graph,
    load_measurement,
    measurement_to_dict,
    save_measurement,
)


@pytest.fixture
def sample_measurement():
    m = NetworkMeasurement(
        node_ids=["a", "b", "c"],
        iterations=3,
        sim_time_start=1.0,
        sim_time_end=61.0,
        transactions_sent=420,
        skipped_nodes=["z"],
    )
    m.add_edges({edge("a", "b"), edge("b", "c")})
    m.score = ValidationScore(2, 0, 1)
    return m


class TestRoundTrip:
    def test_save_and_load(self, sample_measurement, tmp_path):
        path = save_measurement(sample_measurement, tmp_path / "m.json")
        loaded = load_measurement(path)
        assert loaded.node_ids == sample_measurement.node_ids
        assert loaded.edges == sample_measurement.edges
        assert loaded.duration == sample_measurement.duration
        assert loaded.score.recall == sample_measurement.score.recall
        assert loaded.skipped_nodes == ["z"]

    def test_score_optional(self, sample_measurement, tmp_path):
        sample_measurement.score = None
        path = save_measurement(sample_measurement, tmp_path / "m.json")
        assert load_measurement(path).score is None

    def test_dict_is_json_safe(self, sample_measurement):
        json.dumps(measurement_to_dict(sample_measurement))

    def test_edges_canonicalized(self, sample_measurement):
        payload = measurement_to_dict(sample_measurement)
        assert payload["edges"] == [["a", "b"], ["b", "c"]]

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_measurement(path)

    def test_wrong_version_raises(self, sample_measurement, tmp_path):
        payload = measurement_to_dict(sample_measurement)
        payload["format_version"] = 999
        path = tmp_path / "m.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError):
            load_measurement(path)

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"format_version": 1}))
        with pytest.raises(SerializationError):
            load_measurement(path)


class TestRoundTripProperty:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    node_names = st.text(
        alphabet="abcdefgh0123456789-", min_size=1, max_size=12
    )

    @given(
        nodes=st.lists(node_names, min_size=2, max_size=10, unique=True),
        edge_indices=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=15
        ),
        iterations=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_measurements_round_trip(
        self, tmp_path_factory, nodes, edge_indices, iterations
    ):
        from repro.core.results import NetworkMeasurement

        measurement = NetworkMeasurement(node_ids=nodes, iterations=iterations)
        for i, j in edge_indices:
            a, b = nodes[i % len(nodes)], nodes[j % len(nodes)]
            if a != b:
                measurement.add_edges({frozenset((a, b))})
        path = tmp_path_factory.mktemp("io") / "m.json"
        save_measurement(measurement, path)
        loaded = load_measurement(path)
        assert loaded.node_ids == measurement.node_ids
        assert loaded.edges == measurement.edges
        assert loaded.iterations == measurement.iterations


class TestGraphExport:
    @pytest.fixture
    def graph(self):
        return nx.path_graph(["a", "b", "c", "d"])

    def test_edgelist(self, graph, tmp_path):
        path = export_graph(graph, tmp_path / "g.txt", fmt="edgelist")
        lines = path.read_text().splitlines()
        assert lines == ["a b", "b c", "c d"]

    def test_graphml_loads_back(self, graph, tmp_path):
        path = export_graph(graph, tmp_path / "g.graphml", fmt="graphml")
        loaded = nx.read_graphml(path)
        assert set(loaded.nodes()) == set(graph.nodes())
        assert loaded.number_of_edges() == 3

    def test_json_format(self, graph, tmp_path):
        path = export_graph(graph, tmp_path / "g.json", fmt="json")
        payload = json.loads(path.read_text())
        assert payload["nodes"] == ["a", "b", "c", "d"]
        assert ["a", "b"] in payload["edges"]

    def test_unknown_format(self, graph, tmp_path):
        with pytest.raises(ValueError):
            export_graph(graph, tmp_path / "g.x", fmt="dot")

    def test_degree_csv(self, graph, tmp_path):
        path = export_degree_csv(graph, tmp_path / "deg.csv")
        rows = path.read_text().splitlines()
        assert rows[0] == "node,degree"
        assert "a,1" in rows
        assert "b,2" in rows


class TestHardenedRoundTrip:
    """Evidence, confidence labels, quarantine and suspects persist."""

    @pytest.fixture
    def hardened_measurement(self):
        from repro.core.results import (
            CONFIDENCE_HIGH,
            CONFIDENCE_QUARANTINED,
            EdgeEvidence,
        )

        m = NetworkMeasurement(node_ids=["a", "b", "c"], iterations=2)
        m.add_edges({edge("a", "b")})
        m.evidence[edge("a", "b")] = EdgeEvidence(
            source="a",
            sink="b",
            tx_hash="0xaa",
            observed_at=12.5,
            kind="direct",
            rpc_confirmed=True,
            extra_observers=("c",),
            iteration=1,
        )
        m.edge_confidence[edge("a", "b")] = CONFIDENCE_HIGH
        m.edge_confidence[edge("a", "c")] = CONFIDENCE_QUARANTINED
        m.quarantined.add(edge("a", "c"))
        m.suspect_nodes.add("c")
        m.score = ValidationScore(
            1, 0, 1, false_negative_edges=(("b", "c"),)
        )
        return m

    def test_round_trip_preserves_adversarial_fields(
        self, hardened_measurement, tmp_path
    ):
        path = save_measurement(hardened_measurement, tmp_path / "m.json")
        loaded = load_measurement(path)
        assert loaded.evidence == hardened_measurement.evidence
        assert loaded.edge_confidence == hardened_measurement.edge_confidence
        assert loaded.quarantined == hardened_measurement.quarantined
        assert loaded.suspect_nodes == hardened_measurement.suspect_nodes
        assert (
            loaded.score.false_negative_edges
            == hardened_measurement.score.false_negative_edges
        )
        assert loaded.score.false_positive_edges == ()

    def test_payload_stays_json_safe_and_versioned(self, hardened_measurement):
        payload = measurement_to_dict(hardened_measurement)
        json.dumps(payload)
        assert payload["format_version"] == 1  # additive keys only

    def test_legacy_payload_without_new_keys_loads(
        self, sample_measurement, tmp_path
    ):
        payload = measurement_to_dict(sample_measurement)
        for key in ("evidence", "edge_confidence", "quarantined", "suspect_nodes"):
            payload.pop(key, None)
        for key in ("false_positive_edges", "false_negative_edges"):
            payload["score"].pop(key, None)
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        loaded = load_measurement(path)
        assert loaded.edges == sample_measurement.edges
        assert loaded.evidence == {}
        assert loaded.quarantined == set()
        assert loaded.suspect_nodes == set()
        assert loaded.score.false_positive_edges == ()
