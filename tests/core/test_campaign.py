"""Tests for the TopoShot campaign orchestrator."""

import pytest

from repro.core.campaign import TopoShot
from repro.core.results import edge
from repro.errors import MeasurementError
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import NETHERMIND
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from tests.conftest import pairs_of


@pytest.fixture
def campaign_network():
    network = quick_network(n_nodes=16, seed=13)
    prefill_mempools(network)
    return network


class TestAttach:
    def test_attach_joins_supernode(self, campaign_network):
        shot = TopoShot.attach(campaign_network)
        assert shot.supernode.degree == 16
        assert shot.supernode.id in campaign_network.supernode_ids

    def test_default_config_derived_from_dominant_client(self, campaign_network):
        shot = TopoShot.attach(campaign_network)
        geth_scaled = campaign_network.node(
            campaign_network.measurable_node_ids()[0]
        ).config.policy
        assert shot.config.replace_bump == geth_scaled.replace_bump
        assert shot.config.future_count == geth_scaled.capacity

    def test_unmeasurable_network_rejected(self):
        network = Network(seed=1)
        config = NodeConfig(policy=NETHERMIND.scaled(64))
        network.create_node("a", config)
        network.create_node("b", config)
        network.connect("a", "b")
        with pytest.raises(MeasurementError):
            TopoShot.attach(network)


class TestMeasureLink:
    def test_link_result_matches_truth(self, campaign_network):
        truth = campaign_network.ground_truth_graph()
        shot = TopoShot.attach(campaign_network)
        (a, b), = pairs_of(truth, connected=True, limit=1)
        (x, y), = pairs_of(truth, connected=False, limit=1)
        assert shot.measure_link(a, b).connected
        assert not shot.measure_link(x, y).connected

    def test_link_result_counts_attempts(self, campaign_network):
        truth = campaign_network.ground_truth_graph()
        shot = TopoShot.attach(campaign_network)
        shot.config = shot.config.with_repeats(2)
        (x, y), = pairs_of(truth, connected=False, limit=1)
        result = shot.measure_link(x, y)
        assert result.attempts == 2
        assert result.positive_attempts == 0


class TestMeasureNetwork:
    def test_perfect_precision_and_high_recall(self, campaign_network):
        shot = TopoShot.attach(campaign_network)
        measurement = shot.measure_network()
        assert measurement.score is not None
        assert measurement.score.precision == 1.0
        assert measurement.score.recall >= 0.8

    def test_measured_graph_subset_of_truth(self, campaign_network):
        truth = campaign_network.ground_truth_graph()
        shot = TopoShot.attach(campaign_network)
        measurement = shot.measure_network()
        for e in measurement.edges:
            a, b = tuple(e)
            assert truth.has_edge(a, b)

    def test_progress_callback_invoked_per_iteration(self, campaign_network):
        shot = TopoShot.attach(campaign_network)
        calls = []
        measurement = shot.measure_network(
            progress=lambda i, n, it, rep: calls.append((i, n))
        )
        assert len(calls) == measurement.iterations
        assert calls[0][1] == measurement.iterations

    def test_requires_two_targets(self, campaign_network):
        shot = TopoShot.attach(campaign_network)
        with pytest.raises(MeasurementError):
            shot.measure_network(targets=[campaign_network.measurable_node_ids()[0]])

    def test_explicit_group_size(self, campaign_network):
        shot = TopoShot.attach(campaign_network)
        measurement = shot.measure_network(group_size=4)
        from repro.core.schedule import build_schedule

        expected = len(build_schedule(measurement.node_ids, 4))
        assert measurement.iterations == expected

    def test_duration_and_tx_accounting(self, campaign_network):
        shot = TopoShot.attach(campaign_network)
        measurement = shot.measure_network()
        assert measurement.duration > 0
        assert measurement.transactions_sent > 0
        assert len(shot.measurement_senders) > 0


class TestPreprocessIntegration:
    def test_misbehaving_nodes_skipped(self):
        network = quick_network(
            n_nodes=16,
            seed=17,
            fraction_future_forwarders=0.25,
        )
        prefill_mempools(network)
        shot = TopoShot.attach(network)
        measurement = shot.measure_network()
        assert len(measurement.skipped_nodes) > 0
        assert set(measurement.node_ids).isdisjoint(measurement.skipped_nodes)

    def test_preprocess_can_be_disabled(self, campaign_network):
        shot = TopoShot.attach(campaign_network)
        measurement = shot.measure_network(preprocess=False)
        assert measurement.skipped_nodes == []
        assert len(measurement.node_ids) == 16


class TestMeasurePairs:
    def test_explicit_pairs_only(self, campaign_network):
        truth = campaign_network.ground_truth_graph()
        shot = TopoShot.attach(campaign_network)
        true_pairs = pairs_of(truth, connected=True, limit=3)
        false_pairs = pairs_of(truth, connected=False, limit=3)
        detected = shot.measure_pairs(true_pairs + false_pairs)
        assert detected == {edge(a, b) for a, b in true_pairs}


class TestCheckpointRoundTrip:
    """Regression: ``from_dict(to_dict(cp))`` must reproduce the checkpoint
    exactly — edges, failures and skipped nodes included — and reject
    malformed edge entries instead of silently collapsing them."""

    def _checkpoint(self):
        from repro.core.campaign import CampaignCheckpoint
        from repro.core.results import MeasurementFailure

        return CampaignCheckpoint(
            seed=42,
            targets=["node-0", "node-1", "node-2", "node-3"],
            group_size=2,
            completed_iterations=3,
            edges={edge("node-0", "node-1"), edge("node-2", "node-3")},
            transactions_sent=1234,
            setup_failures=2,
            send_timeouts=1,
            skipped_nodes=["node-9"],
            failures=[
                MeasurementFailure(
                    kind="unreachable", node="node-3", iteration=1,
                    detail="target was down",
                ),
                MeasurementFailure(
                    kind="iteration_error", iteration=2, detail="boom",
                ),
            ],
        )

    def test_round_trip_is_lossless(self):
        from repro.core.campaign import CampaignCheckpoint

        original = self._checkpoint()
        restored = CampaignCheckpoint.from_dict(original.to_dict())
        assert restored.seed == original.seed
        assert restored.targets == original.targets
        assert restored.group_size == original.group_size
        assert restored.completed_iterations == original.completed_iterations
        assert restored.edges == original.edges
        assert restored.transactions_sent == original.transactions_sent
        assert restored.setup_failures == original.setup_failures
        assert restored.send_timeouts == original.send_timeouts
        assert restored.skipped_nodes == original.skipped_nodes
        assert restored.failures == original.failures
        # A second hop must be a fixed point.
        assert restored.to_dict() == original.to_dict()

    @pytest.mark.parametrize(
        "bad_entry",
        [["node-0"], ["node-0", "node-0"], ["node-0", 7], [], ["a", "b", "c"]],
    )
    def test_malformed_edge_entries_rejected(self, bad_entry):
        from repro.core.campaign import CampaignCheckpoint
        from repro.errors import CheckpointError

        payload = self._checkpoint().to_dict()
        payload["edges"] = [bad_entry]
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.from_dict(payload)
