"""Tests for the Ethna passive degree-estimation baseline.

Ethna never injects anything — the assertions check that (a) the
push/announce ratio model inverts sensibly, (b) estimates land near the
true gossip degrees on a golden topology, and (c) the method stays
passive (zero probe transactions; only observation of organic traffic).
"""

import math

from repro.baselines.ethna import (
    expected_push_ratio,
    invert_push_ratio,
    run_ethna,
)
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def build(seed=41, n=12, **overrides):
    network = quick_network(n_nodes=n, seed=seed, **overrides)
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    network.run(1.0)
    return network, supernode


class TestRatioModel:
    def test_matches_fanout_rule(self):
        """r(d) = ceil(sqrt(d)) / (d - 1), capped at 1."""
        assert expected_push_ratio(2) == 1.0
        assert expected_push_ratio(10) == math.ceil(math.sqrt(10)) / 9
        assert expected_push_ratio(26) == 6 / 25

    def test_inversion_round_trips(self):
        """Inverting a modelled ratio recovers a degree with the same
        expected ratio (ceil() makes the map non-injective, so the exact
        degree is not always recoverable — the ratio is)."""
        for degree in (4, 9, 12, 20, 40):
            recovered = invert_push_ratio(expected_push_ratio(degree), 64)
            assert expected_push_ratio(recovered) == expected_push_ratio(degree)

    def test_extreme_ratios_clamp(self):
        assert invert_push_ratio(1.0, 64) <= 3
        assert invert_push_ratio(0.0, 64) == 64


class TestGoldenTopology:
    def test_estimates_near_truth(self):
        """On the golden net the mean absolute percentage error stays
        well under the ~50% a degree-blind guess would give."""
        network, supernode = build(seed=7, n=16)
        report = run_ethna(network, supernode, observation_txs=80)
        assert len(report.degree_estimates) >= 12
        assert report.degree_mape < 0.45
        for peer, estimate in report.degree_estimates.items():
            true = report.true_degrees[peer]
            assert abs(estimate - true) <= max(6, true)

    def test_deterministic_for_fixed_seed(self):
        results = []
        for _ in range(2):
            network, supernode = build(seed=7, n=12)
            report = run_ethna(network, supernode, observation_txs=40)
            results.append(dict(report.degree_estimates))
        assert results[0] == results[1]


class TestPassivity:
    def test_no_probe_transactions(self):
        """The monitor observes; it never injects. Its pool still holds
        only transactions it fetched from announcements."""
        network, supernode = build(seed=41, n=10)
        sent_before = network.messages_sent
        report = run_ethna(network, supernode, observation_txs=30)
        # messages were exchanged (gossip + body fetches), but none of
        # them originate probe transactions from the supernode
        assert network.messages_sent > sent_before
        assert report.observed_txs >= 30

    def test_low_sample_peers_are_skipped(self):
        network, supernode = build(seed=41, n=10)
        report = run_ethna(
            network, supernode, observation_txs=8, min_samples=1000
        )
        assert not report.degree_estimates
        assert report.skipped_low_sample == len(network.measurable_node_ids())
        assert report.degree_mae == 0.0

    def test_summary_reports_error(self):
        network, supernode = build(seed=41, n=10)
        report = run_ethna(network, supernode, observation_txs=30)
        assert "MAPE" in report.summary()
