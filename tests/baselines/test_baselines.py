"""Tests for the TxProbe, FIND_NODE and timing baselines.

The headline assertions mirror the paper's Section 4 arguments:

- TxProbe's announcement blocking works on Bitcoin-style announce-only
  propagation but produces false positives on Ethereum's push-based model;
- FIND_NODE crawls recover routing-table (inactive) edges, which are a
  poor predictor of active links;
- timing inference has materially lower precision than TopoShot's 100%.
"""


from repro.baselines.findnode import crawl_inactive_edges
from repro.baselines.timing import timing_inference
from repro.baselines.txprobe import txprobe_measure_link, txprobe_survey
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from tests.conftest import pairs_of


def build(seed=41, announce_only=False, n=12):
    network = quick_network(n_nodes=n, seed=seed, announce_only=announce_only)
    truth = network.ground_truth_graph()
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    return network, supernode, truth


class TestTxProbeOnBitcoinStyle:
    """With announce-only propagation, TxProbe's isolation holds."""

    def test_true_link_detected(self):
        network, supernode, truth = build(announce_only=True)
        (a, b), = pairs_of(truth, connected=True, limit=1)
        report = txprobe_measure_link(network, supernode, a, b)
        assert report.positive

    def test_non_link_blocked_by_announcement_hold(self):
        network, supernode, truth = build(announce_only=True)
        (a, b), = pairs_of(truth, connected=False, limit=1)
        report = txprobe_measure_link(network, supernode, a, b)
        assert not report.positive


class TestTxProbeOnEthereum:
    """With Ethereum's direct pushes, isolation breaks (Section 4.1)."""

    def test_non_links_yield_false_positives(self):
        network, supernode, truth = build(announce_only=False)
        false_pairs = pairs_of(truth, connected=False, limit=6)
        survey = txprobe_survey(network, supernode, false_pairs)
        assert survey.score.false_positives > 0

    def test_precision_below_toposhot(self):
        network, supernode, truth = build(announce_only=False)
        pairs = pairs_of(truth, connected=True, limit=3) + pairs_of(
            truth, connected=False, limit=5
        )
        survey = txprobe_survey(network, supernode, pairs)
        assert survey.score.precision < 1.0

    def test_without_blocking_everything_looks_connected(self):
        network, supernode, truth = build(announce_only=False)
        (a, b), = pairs_of(truth, connected=False, limit=1)
        report = txprobe_measure_link(network, supernode, a, b, blocking=False)
        assert report.positive  # the marker simply floods


class TestFindNodeCrawl:
    def test_crawl_collects_routing_tables(self):
        network, supernode, _ = build()
        crawl = crawl_inactive_edges(network, supernode)
        assert crawl.responses == len(network.measurable_node_ids())
        assert len(crawl.inactive_edges) > 0

    def test_inactive_edges_do_not_reveal_active_topology(self):
        """The W2 limitation: routing tables cannot distinguish the ~50
        active neighbours from the 272 inactive ones (Section 4)."""
        network, supernode, truth = build(n=20)
        crawl = crawl_inactive_edges(network, supernode)
        assert crawl.active_edge_precision < 0.9
        assert "FIND_NODE" in crawl.summary()

    def test_tables_superset_bias(self):
        """Inactive-edge sets are much larger than the active topology."""
        network, supernode, truth = build(n=20)
        crawl = crawl_inactive_edges(network, supernode)
        assert len(crawl.inactive_edges) > truth.number_of_edges()


class TestTimingInference:
    def test_runs_and_scores(self):
        network, supernode, _ = build(n=10)
        result = timing_inference(
            network, supernode, probes_per_node=2, neighbor_guess=4
        )
        assert result.probes == 20
        assert result.score_vs_active is not None
        assert "timing inference" in result.summary()

    def test_accuracy_below_toposhot(self):
        """The 'limited accuracy' of timing analysis (Section 4): on a
        sparse overlay the heuristic falls well short of TopoShot's
        100% precision / ~90% recall."""
        network = quick_network(
            n_nodes=20, seed=43, outbound_dials=3, max_peers=8
        )
        prefill_mempools(network, median_price=gwei(1.0))
        supernode = Supernode.join(network)
        result = timing_inference(
            network, supernode, probes_per_node=2, neighbor_guess=5
        )
        assert result.score_vs_active.f1 < 0.9

    def test_finds_some_real_edges(self):
        network, supernode, _ = build(n=10)
        result = timing_inference(
            network, supernode, probes_per_node=3, neighbor_guess=4
        )
        assert result.score_vs_active.true_positives > 0
