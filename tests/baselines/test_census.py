"""Tests for the W1 node census baseline."""

import pytest

from repro.baselines.census import measurable_targets, run_census
from repro.eth.supernode import Supernode
from repro.netgen.ethereum import NetworkSpec, generate_network


@pytest.fixture
def mixed_network():
    network = generate_network(
        NetworkSpec(
            n_nodes=40,
            seed=73,
            parity_fraction=0.2,
            nethermind_fraction=0.1,
            fraction_rpc_disabled=0.15,
            fraction_non_relaying=0.1,
        )
    )
    supernode = Supernode.join(network)
    return network, supernode


class TestCensus:
    def test_counts_every_reachable_node(self, mixed_network):
        network, supernode = mixed_network
        census = run_census(network, supernode)
        assert census.network_size == 40
        assert sum(census.client_families.values()) == 40
        assert len(census.versions) == 40

    def test_client_mix_reflects_generation(self, mixed_network):
        network, supernode = mixed_network
        census = run_census(network, supernode)
        assert census.dominant_client == "geth"
        assert census.family_share("geth") > 0.5
        assert "openethereum" in census.client_families
        assert "nethermind" in census.client_families

    def test_rpc_and_relay_counts(self, mixed_network):
        network, supernode = mixed_network
        census = run_census(network, supernode)
        assert 0 < census.rpc_responsive < 40
        assert 0 < census.relaying <= 40

    def test_summary_readable(self, mixed_network):
        network, supernode = mixed_network
        census = run_census(network, supernode)
        assert "census: 40 nodes" in census.summary()
        assert "geth" in census.summary()

    def test_measurable_targets_filters_by_family(self, mixed_network):
        network, supernode = mixed_network
        census = run_census(network, supernode)
        targets = measurable_targets(census)
        assert targets
        for node_id in targets:
            assert census.versions[node_id].startswith("Geth")

    def test_census_sees_only_supernode_peers(self):
        """Nodes the supernode is not peered with stay uncounted — the
        W1 method's reachability limit."""
        network = generate_network(NetworkSpec(n_nodes=10, seed=74))
        partial = Supernode.join(
            network, node_id="partial", targets=network.measurable_node_ids()[:5]
        )
        census = run_census(network, partial)
        assert len(census.versions) == 5
