"""Tests for the DEthna marked-transaction baseline.

The golden-topology assertions pin the protocol's fidelity story: on a
sparse network where every target is measured, the mark-race inference
recovers the active topology with high precision AND high recall; on a
target *subset*, two-hop relays through non-target nodes cost precision
(the documented caveat); and marks are genuinely cheap — priced below
the ambient median yet admitted everywhere.
"""

from repro.baselines.dethna import mark_price, run_dethna
from repro.core.results import edge
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from repro.sim.faults import FaultPlan


def build(seed=41, n=12, **overrides):
    network = quick_network(n_nodes=n, seed=seed, **overrides)
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    network.run(1.0)
    return network, supernode


class TestGoldenTopology:
    def test_recovers_sparse_topology(self):
        """Full-target DEthna on the golden sparse net: near-perfect."""
        network, supernode = build(seed=7, n=16, outbound_dials=3)
        report = run_dethna(network, supernode, rounds=8)
        assert report.score_vs_active is not None
        assert report.score_vs_active.precision >= 0.8
        assert report.score_vs_active.recall >= 0.9

    def test_exact_edges_with_fixed_seed(self):
        """Determinism: the same seed yields the same inferred edge set."""
        edges = []
        for _ in range(2):
            network, supernode = build(seed=7, n=10, outbound_dials=3)
            report = run_dethna(network, supernode, rounds=6)
            edges.append(frozenset(report.predicted))
        assert edges[0] == edges[1]
        truth = {
            e
            for e in network.ground_truth_edges()
        }
        assert edges[0] & truth  # finds real edges, not noise

    def test_every_vote_needs_min_votes(self):
        network, supernode = build(seed=7, n=10, outbound_dials=3)
        report = run_dethna(network, supernode, rounds=6, min_votes=3)
        for claimed in report.predicted:
            assert report.votes[claimed] >= 3


class TestMarkEconomics:
    def test_marks_priced_below_ambient_median(self):
        """The paper's cost asymmetry: marks relay but never attract
        miners, so they must sit below the ambient median."""
        network, supernode = build(seed=41)
        target = network.measurable_node_ids()[0]
        price = mark_price(network, target, factor=0.5)
        median = network.node(target).mempool.median_pending_price()
        assert 0 < price < median

    def test_marks_sent_counts_cost(self):
        network, supernode = build(seed=41, n=8)
        report = run_dethna(network, supernode, rounds=3)
        assert report.marks_sent == 3 * len(network.measurable_node_ids())


class TestSubsetAndFaults:
    def test_target_subset_restricts_scoring(self):
        network, supernode = build(seed=3, n=20, outbound_dials=4)
        targets = list(network.measurable_node_ids())[:6]
        report = run_dethna(network, supernode, targets=targets, rounds=6)
        for claimed in report.predicted:
            assert set(claimed) <= set(targets)

    def test_send_timeouts_are_survived(self):
        network, supernode = build(seed=11, n=10, outbound_dials=3)
        network.install_faults(FaultPlan(send_timeout_rate=0.5))
        report = run_dethna(network, supernode, rounds=4)
        assert report.send_failures > 0
        # skipped injections, not crashes: the report is still produced
        assert report.marks_sent + report.send_failures == 4 * len(
            network.measurable_node_ids()
        )

    def test_summary_mentions_cost(self):
        network, supernode = build(seed=41, n=8)
        report = run_dethna(network, supernode, rounds=2)
        assert "marks" in report.summary()
