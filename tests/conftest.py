"""Shared fixtures for the TopoShot reproduction test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.eth.account import Wallet
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory, gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)


@pytest.fixture
def wallet() -> Wallet:
    return Wallet("test")


@pytest.fixture
def factory() -> TransactionFactory:
    return TransactionFactory()


@pytest.fixture
def small_policy():
    """A Geth policy scaled to a 64-slot pool for fast tests."""
    return GETH.scaled(64)


@pytest.fixture
def triangle_network() -> Network:
    """Three mutually connected nodes n0--n1--n2--n0 (plus nothing else)."""
    network = Network(seed=7)
    config = NodeConfig(policy=GETH.scaled(64))
    for index in range(3):
        network.create_node(f"n{index}", config)
    network.connect("n0", "n1")
    network.connect("n1", "n2")
    network.connect("n0", "n2")
    return network


@pytest.fixture
def line_network() -> Network:
    """Four nodes in a line: n0--n1--n2--n3."""
    network = Network(seed=9)
    config = NodeConfig(policy=GETH.scaled(64))
    for index in range(4):
        network.create_node(f"n{index}", config)
    for a, b in (("n0", "n1"), ("n1", "n2"), ("n2", "n3")):
        network.connect(a, b)
    return network


@pytest.fixture
def measured_network():
    """A 14-node Ethereum-like network, pools pre-filled, supernode joined.

    Returns (network, supernode, ground_truth_graph).
    """
    network = quick_network(n_nodes=14, seed=5)
    truth = network.ground_truth_graph()
    prefill_mempools(network, median_price=gwei(1.0))
    supernode = Supernode.join(network)
    return network, supernode, truth


def pairs_of(graph, connected: bool, limit: int = 10):
    """First ``limit`` node pairs that are (not) edges of ``graph``."""
    out = []
    for a, b in itertools.combinations(sorted(graph.nodes()), 2):
        if graph.has_edge(a, b) == connected:
            out.append((a, b))
            if len(out) >= limit:
                break
    return out
