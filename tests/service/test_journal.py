"""Crash-safety of the JSON-lines job journal: replay, torn tails, compaction."""

import json
import os

from repro.service.jobs import DONE, QUEUED, RUNNING, JobRecord, JobSpec
from repro.service.journal import JobJournal


def _record(job_id: str, state: str = QUEUED, tenant: str = "t") -> JobRecord:
    return JobRecord(
        spec=JobSpec(tenant=tenant, kind="synthetic", job_id=job_id),
        state=state,
    )


class TestAppendReplay:
    def test_replay_returns_last_record_per_job(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append(_record("j1", QUEUED))
        journal.append(_record("j2", QUEUED))
        journal.append(_record("j1", RUNNING))
        journal.append(_record("j1", DONE))
        journal.close()
        records, skipped = JobJournal.replay(path)
        assert skipped == 0
        assert records["j1"].state == DONE
        assert records["j2"].state == QUEUED

    def test_replay_preserves_first_submission_order(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        for job_id in ("c", "a", "b"):
            journal.append(_record(job_id))
        journal.append(_record("c", DONE))  # later transition of the first job
        journal.close()
        records, _ = JobJournal.replay(path)
        assert list(records) == ["c", "a", "b"]

    def test_appends_are_fsynced(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        journal = JobJournal(tmp_path / "journal.jsonl", fsync=True)
        journal.append(_record("j1"))
        assert synced, "append must fsync before reporting durability"
        journal.close()

    def test_missing_journal_replays_empty(self, tmp_path):
        records, skipped = JobJournal.replay(tmp_path / "nope.jsonl")
        assert records == {}
        assert skipped == 0


class TestTornTail:
    def test_torn_final_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append(_record("j1", DONE))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v":1,"record":{"spec":{"tenant"')  # crash mid-append
        records, skipped = JobJournal.replay(path)
        assert skipped == 1
        assert records["j1"].state == DONE

    def test_garbage_line_in_the_middle_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append(_record("j1"))
        journal.close()
        content = path.read_text(encoding="utf-8")
        path.write_text(
            content.split("\n")[0] + "\nnot json at all\n", encoding="utf-8"
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"v": 1, "record": _record("j2").to_dict()}) + "\n"
            )
        records, skipped = JobJournal.replay(path)
        assert skipped == 1
        assert set(records) == {"j1", "j2"}


class TestCompaction:
    def test_compact_collapses_to_one_line_per_job(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        for state in (QUEUED, RUNNING, DONE):
            journal.append(_record("j1", state))
        journal.append(_record("j2", QUEUED))
        assert len(path.read_text().splitlines()) == 4
        kept = journal.compact()
        assert kept == 2
        assert len(path.read_text().splitlines()) == 2
        records, _ = JobJournal.replay(path)
        assert records["j1"].state == DONE

    def test_journal_stays_appendable_after_compaction(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append(_record("j1", DONE))
        journal.compact()
        journal.append(_record("j2", QUEUED))
        journal.close()
        records, _ = JobJournal.replay(path)
        assert set(records) == {"j1", "j2"}

    def test_compact_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.append(_record("j1"))
        journal.compact()
        journal.close()
        assert not (tmp_path / "journal.jsonl.tmp").exists()
