"""Token buckets, tenant quotas and typed admission rejections."""

import pytest

from repro.errors import QueueFull, QuotaExceeded, ServiceError
from repro.service.limiter import (
    AdmissionController,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=4.0, clock=clock)
        assert bucket.available() == 4.0
        bucket.take(4.0)
        assert bucket.available() == 0.0
        clock.advance(1.0)
        assert bucket.available() == 2.0

    def test_refill_clamps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=3.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == 3.0

    def test_try_take_is_atomic_check_and_debit(self):
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=FakeClock())
        assert bucket.try_take(2.0)
        assert not bucket.try_take(0.5)

    def test_retry_after_is_the_refill_horizon(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=10.0, clock=clock)
        bucket.take(10.0)
        assert bucket.retry_after(4.0) == pytest.approx(2.0)

    def test_retry_after_clamps_impossible_demands(self):
        """Asking for more than capacity reports the full-bucket horizon,
        never infinity."""
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=5.0, clock=clock)
        bucket.take(5.0)
        assert bucket.retry_after(1000.0) == pytest.approx(5.0)

    def test_zero_rate_disables_the_bucket(self):
        bucket = TokenBucket(rate=0.0, capacity=0.0, clock=FakeClock())
        assert not bucket.enabled
        assert bucket.can_take(1e9)
        assert bucket.retry_after(1e9) == 0.0

    def test_positive_rate_requires_positive_capacity(self):
        with pytest.raises(ServiceError):
            TokenBucket(rate=1.0, capacity=0.0)


def _controller(clock, **overrides):
    defaults = dict(
        default_quota=TenantQuota(
            jobs_per_second=1.0,
            job_burst=2.0,
            node_seconds_per_second=100.0,
            node_seconds_burst=200.0,
            max_queued=3,
        ),
        global_jobs_per_second=10.0,
        global_job_burst=20.0,
        max_queued_total=5,
        clock=clock,
    )
    defaults.update(overrides)
    return AdmissionController(**defaults)


class TestAdmissionController:
    def test_admits_within_quota(self):
        controller = _controller(FakeClock())
        controller.admit("alice", 50.0, queued_total=0, queued_for_tenant=0)
        assert controller.admitted_total == 1
        assert controller.rejected == {}

    def test_global_queue_bound_sheds_with_queue_full(self):
        controller = _controller(FakeClock())
        with pytest.raises(QueueFull):
            controller.admit("alice", 1.0, queued_total=5, queued_for_tenant=0)
        assert controller.rejected == {"queue_full_global": 1}

    def test_tenant_queue_bound_sheds_before_burning_tokens(self):
        clock = FakeClock()
        controller = _controller(clock)
        with pytest.raises(QueueFull):
            controller.admit("alice", 1.0, queued_total=0, queued_for_tenant=3)
        # The rejection consumed no tokens: a within-bounds submission
        # immediately after still has the full burst available.
        controller.admit("alice", 1.0, queued_total=0, queued_for_tenant=0)
        controller.admit("alice", 1.0, queued_total=0, queued_for_tenant=1)
        assert controller.admitted_total == 2

    def test_tenant_rate_quota_with_retry_after(self):
        clock = FakeClock()
        controller = _controller(clock)
        controller.admit("alice", 1.0, 0, 0)
        controller.admit("alice", 1.0, 0, 0)
        with pytest.raises(QuotaExceeded) as excinfo:
            controller.admit("alice", 1.0, 0, 0)
        assert excinfo.value.retry_after == pytest.approx(1.0)
        assert controller.rejected == {"tenant_rate": 1}
        clock.advance(1.0)
        controller.admit("alice", 1.0, 0, 0)

    def test_node_seconds_budget_blocks_oversized_work(self):
        """A tenant cannot dodge the jobs/s cap with few huge jobs: the
        node-seconds bucket is the bytes/s-style second currency."""
        controller = _controller(FakeClock())
        controller.admit("alice", 200.0, 0, 0)  # drains the whole budget
        with pytest.raises(QuotaExceeded):
            controller.admit("alice", 50.0, 0, 0)
        assert controller.rejected == {"tenant_budget": 1}

    def test_rejection_debits_nothing(self):
        """Two-phase admission: a budget rejection leaves the jobs bucket
        untouched."""
        controller = _controller(FakeClock())
        with pytest.raises(QuotaExceeded):
            controller.admit("alice", 1000.0, 0, 0)
        levels = controller.token_levels()["alice"]
        assert levels["jobs"] == pytest.approx(2.0)
        assert levels["node_seconds"] == pytest.approx(200.0)

    def test_tenants_are_isolated(self):
        controller = _controller(FakeClock())
        controller.admit("abuser", 1.0, 0, 0)
        controller.admit("abuser", 1.0, 0, 0)
        with pytest.raises(QuotaExceeded):
            controller.admit("abuser", 1.0, 0, 0)
        # The honest tenant's buckets are unaffected.
        controller.admit("honest", 1.0, 0, 0)

    def test_global_throttle_caps_all_tenants_together(self):
        controller = _controller(
            FakeClock(), global_jobs_per_second=1.0, global_job_burst=2.0
        )
        controller.admit("a", 1.0, 0, 0)
        controller.admit("b", 1.0, 0, 0)
        with pytest.raises(QuotaExceeded):
            controller.admit("c", 1.0, 0, 0)
        assert controller.rejected == {"global_rate": 1}

    def test_per_tenant_quota_overrides(self):
        controller = _controller(
            FakeClock(),
            tenant_quotas={
                "vip": TenantQuota(jobs_per_second=100.0, job_burst=100.0)
            },
        )
        assert controller.quota_for("vip").job_burst == 100.0
        assert controller.quota_for("anon").job_burst == 2.0
