"""Weighted round-robin fairness and running caps of the FairScheduler."""

from repro.service.jobs import ADMITTED, QUEUED, JobRecord, JobSpec
from repro.service.scheduler import FairScheduler


def _job(tenant: str, n: int = 0) -> JobRecord:
    return JobRecord(
        spec=JobSpec(tenant=tenant, kind="synthetic", job_id=f"{tenant}-{n}")
    )


def _drain_order(scheduler, limit=100):
    order = []
    while len(order) < limit:
        record = scheduler.pop()
        if record is None:
            break
        order.append(record.tenant)
    return order


class TestRoundRobin:
    def test_single_tenant_is_fifo(self):
        scheduler = FairScheduler()
        for n in range(3):
            scheduler.push(_job("a", n))
        ids = [scheduler.pop().job_id for _ in range(3)]
        assert ids == ["a-0", "a-1", "a-2"]
        assert scheduler.pop() is None

    def test_abusive_tenant_cannot_starve_honest_one(self):
        """100 queued abusive jobs vs 2 honest ones: the honest tenant is
        served within one rotation, every time."""
        scheduler = FairScheduler()
        for n in range(100):
            scheduler.push(_job("abuser", n))
        for n in range(2):
            scheduler.push(_job("honest", n))
        order = _drain_order(scheduler, limit=4)
        assert order.count("honest") == 2
        # The first honest job arrives by position 2 despite 100 queued
        # abusive jobs ahead of it.
        assert "honest" in order[:2]

    def test_weights_scale_service_share(self):
        scheduler = FairScheduler(
            weight_of=lambda tenant: 3 if tenant == "heavy" else 1
        )
        for n in range(9):
            scheduler.push(_job("heavy", n))
        for n in range(3):
            scheduler.push(_job("light", n))
        order = _drain_order(scheduler, limit=8)
        # Per rotation: 3 heavy, 1 light.
        assert order[:4].count("heavy") == 3
        assert order[:4].count("light") == 1

    def test_pop_marks_admitted(self):
        scheduler = FairScheduler()
        scheduler.push(_job("a"))
        record = scheduler.pop()
        assert record.state == ADMITTED

    def test_running_cap_skips_saturated_tenant(self):
        scheduler = FairScheduler(max_running_per_tenant=1)
        scheduler.push(_job("busy", 0))
        scheduler.push(_job("idle", 0))
        record = scheduler.pop(running={"busy": 1})
        assert record.tenant == "idle"
        # Nothing else is dispatchable while 'busy' stays saturated.
        assert scheduler.pop(running={"busy": 1}) is None
        assert scheduler.queued_for("busy") == 1

    def test_front_requeue_keeps_queue_position(self):
        scheduler = FairScheduler()
        scheduler.push(_job("a", 0))
        scheduler.push(_job("a", 1))
        first = scheduler.pop()
        scheduler.push(first, front=True)  # drain/circuit-open requeue
        assert scheduler.pop().job_id == first.job_id


class TestManagement:
    def test_depths_and_totals(self):
        scheduler = FairScheduler()
        scheduler.push(_job("a", 0))
        scheduler.push(_job("a", 1))
        scheduler.push(_job("b", 0))
        assert scheduler.queued_total() == 3
        assert scheduler.depths() == {"a": 2, "b": 1}
        assert scheduler.queued_for("missing") == 0

    def test_remove_pulls_a_queued_job(self):
        scheduler = FairScheduler()
        scheduler.push(_job("a", 0))
        scheduler.push(_job("a", 1))
        removed = scheduler.remove("a-0")
        assert removed.job_id == "a-0"
        assert scheduler.remove("a-0") is None
        assert scheduler.queued_total() == 1

    def test_drain_all_preserves_queued_state(self):
        """Shutdown journaling drains records without dispatching them:
        they must stay ``queued`` so recovery re-admits them."""
        scheduler = FairScheduler()
        scheduler.push(_job("b", 0))
        scheduler.push(_job("a", 0))
        drained = scheduler.drain_all()
        assert [record.tenant for record in drained] == ["a", "b"]
        assert all(record.state == QUEUED for record in drained)
        assert scheduler.queued_total() == 0
        assert scheduler.pop() is None
