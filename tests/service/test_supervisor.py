"""Supervised execution: circuit breaker, retries, deadlines, partials."""

import json

import pytest

from repro.errors import CircuitOpen
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    TIMED_OUT,
    JobRecord,
    JobSpec,
)
from repro.service.supervisor import (
    CancelToken,
    CircuitBreaker,
    JobSupervisor,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _job(tenant="t", params=None, **spec_kwargs) -> JobRecord:
    spec = JobSpec(
        tenant=tenant, kind="synthetic", params=params or {}, **spec_kwargs
    )
    return JobRecord(spec=spec)


def _supervisor(tmp_path, clock=None, **kwargs):
    sleeps = []
    supervisor = JobSupervisor(
        state_dir=tmp_path,
        clock=clock or FakeClock(),
        sleep=sleeps.append,
        **kwargs,
    )
    return supervisor, sleeps


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0, clock=clock)
        assert breaker.allow()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)
        assert breaker.trips_total == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()        # the probe
        assert not breaker.allow()    # but only one
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips_total == 2

    def test_release_probe_reopens_the_half_open_slot(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()       # probe claimed
        assert not breaker.allow()   # slot taken
        breaker.release_probe()      # probe ended without a verdict
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # next job may probe

    def test_can_attempt_does_not_claim_the_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        assert breaker.can_attempt()          # CLOSED
        breaker.record_failure()
        assert not breaker.can_attempt()      # OPEN
        clock.advance(5.0)
        assert breaker.can_attempt()          # HALF_OPEN, slot free...
        assert breaker.can_attempt()          # ...and repeated checks
        assert breaker.allow()                # don't consume the probe
        assert not breaker.can_attempt()      # probe now in flight


class TestBackoff:
    def test_schedule_is_deterministic_per_job(self, tmp_path):
        supervisor, _ = _supervisor(tmp_path)
        first = [supervisor.backoff_delay("job-x", n) for n in (1, 2, 3)]
        second = [supervisor.backoff_delay("job-x", n) for n in (1, 2, 3)]
        assert first == second
        # Different jobs jitter differently.
        assert first != [supervisor.backoff_delay("job-y", n) for n in (1, 2, 3)]

    def test_exponential_envelope_with_bounded_jitter(self, tmp_path):
        supervisor, _ = _supervisor(tmp_path)
        for attempt in (1, 2, 3, 4):
            base = min(30.0, 0.2 * (2.0 ** (attempt - 1)))
            delay = supervisor.backoff_delay("j", attempt)
            assert base <= delay <= base * 1.25

    def test_backoff_caps_at_maximum(self, tmp_path):
        supervisor, _ = _supervisor(tmp_path, backoff_max=1.0)
        assert supervisor.backoff_delay("j", 50) <= 1.25


class TestRunLifecycle:
    def test_success_first_try(self, tmp_path):
        supervisor, sleeps = _supervisor(tmp_path)
        record = _job(params={"steps": 3})
        supervisor.run(record, CancelToken())
        assert record.state == DONE
        assert record.attempts == 1
        assert record.result["steps"] == 3
        assert not record.partial
        assert sleeps == []

    def test_retries_until_success_with_deterministic_backoff(self, tmp_path):
        supervisor, sleeps = _supervisor(tmp_path)
        record = _job(params={"steps": 1, "fail_attempts": 2}, max_attempts=5)
        supervisor.run(record, CancelToken())
        assert record.state == DONE
        assert record.attempts == 3
        assert sleeps == [
            supervisor.backoff_delay(record.job_id, 1),
            supervisor.backoff_delay(record.job_id, 2),
        ]
        assert supervisor.retries_total == 2

    def test_attempts_exhausted_fails_with_typed_error(self, tmp_path):
        supervisor, sleeps = _supervisor(tmp_path)
        record = _job(params={"steps": 1, "fail_attempts": 99}, max_attempts=2)
        supervisor.run(record, CancelToken())
        assert record.state == FAILED
        assert record.attempts == 2
        assert record.error["type"] == "attempts_exhausted"
        assert len(sleeps) == 1  # max_attempts=2 means one backoff wait

    def test_completed_job_cleans_its_checkpoints(self, tmp_path):
        supervisor, _ = _supervisor(tmp_path)
        record = _job(params={"steps": 2})
        supervisor.run(record, CancelToken())
        assert not list(tmp_path.glob(f"job-{record.job_id}*"))

    def test_unknown_kind_fails_immediately(self, tmp_path):
        supervisor, _ = _supervisor(tmp_path)
        record = JobRecord(spec=JobSpec(tenant="t", kind="measure"))
        record.spec.kind = "no-such-kind"  # bypass registry-aware callers
        supervisor.run(record, CancelToken())
        assert record.state == FAILED
        assert record.error["type"] == "unknown_kind"


class TestDeadlines:
    def test_expired_deadline_times_out_with_partial(self, tmp_path):
        clock = FakeClock(100.0)
        supervisor, _ = _supervisor(tmp_path, clock=clock)
        record = _job(params={"steps": 10}, deadline=5.0)
        record.submitted_at = 0.0  # deadline passed long ago
        # A previous incarnation completed 4 steps: the timeout must
        # surface them as a confidence-labeled partial result.
        (tmp_path / f"job-{record.job_id}.steps.json").write_text(
            json.dumps({"completed_steps": 4}), encoding="utf-8"
        )
        supervisor.run(record, CancelToken())
        assert record.state == TIMED_OUT
        assert record.error["type"] == "job_timeout"
        assert record.partial
        assert record.result["confidence"] == "partial"
        assert record.result["completed_steps"] == 4
        assert record.result["resumable"]

    def test_backoff_that_would_cross_deadline_times_out(self, tmp_path):
        clock = FakeClock(0.0)
        supervisor, sleeps = _supervisor(
            tmp_path, clock=clock, backoff_base=100.0, backoff_max=100.0
        )
        record = _job(
            params={"steps": 1, "fail_attempts": 5},
            deadline=50.0,
            max_attempts=5,
        )
        record.submitted_at = 0.0
        supervisor.run(record, CancelToken())
        # Retrying would sleep past the deadline: time out now rather
        # than waste the wait.
        assert record.state == TIMED_OUT
        assert sleeps == []


class TestCancellation:
    def test_client_cancel_is_terminal(self, tmp_path):
        supervisor, _ = _supervisor(tmp_path)
        token = CancelToken()
        token.request("cancel")
        record = _job(params={"steps": 3})
        supervisor.run(record, token)
        assert record.state == CANCELLED
        assert record.error["type"] == "job_cancelled"

    def test_drain_cancel_propagates_for_requeue(self, tmp_path):
        from repro.errors import JobCancelled

        supervisor, _ = _supervisor(tmp_path)
        token = CancelToken()
        token.request("drain")
        record = _job(params={"steps": 3})
        with pytest.raises(JobCancelled) as excinfo:
            supervisor.run(record, token)
        assert excinfo.value.requeue
        assert not record.terminal


class TestBreakerIntegration:
    def test_open_breaker_raises_circuit_open(self, tmp_path):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0, clock=clock)
        breaker.record_failure()
        supervisor, _ = _supervisor(tmp_path, breaker=breaker)
        record = _job(params={"steps": 1})
        with pytest.raises(CircuitOpen) as excinfo:
            supervisor.run(record, CancelToken())
        assert excinfo.value.retry_after > 0
        assert not record.terminal

    def test_failures_feed_the_breaker(self, tmp_path):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=30.0, clock=clock)
        supervisor, _ = _supervisor(tmp_path, breaker=breaker)
        record = _job(params={"steps": 1, "fail_attempts": 99}, max_attempts=2)
        supervisor.run(record, CancelToken())
        assert record.state == FAILED
        assert breaker.state == CircuitBreaker.OPEN

    def _half_open_breaker(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        return breaker

    def test_timed_out_probe_does_not_wedge_the_breaker(self, tmp_path):
        """Regression: a HALF_OPEN probe job ending via JobTimeout must
        release its probe slot — else allow() is False for every job
        forever and the service stops executing until restart."""
        clock = FakeClock(100.0)
        breaker = self._half_open_breaker(clock)
        supervisor, _ = _supervisor(tmp_path, clock=clock, breaker=breaker)
        record = _job(params={"steps": 10}, deadline=5.0)
        record.submitted_at = 0.0  # deadline long past: first heartbeat raises
        supervisor.run(record, CancelToken())
        assert record.state == TIMED_OUT
        assert breaker.can_attempt()
        # The pool itself is fine: the next job probes and closes it.
        healthy = _job(params={"steps": 1})
        supervisor.run(healthy, CancelToken())
        assert healthy.state == DONE
        assert breaker.state == CircuitBreaker.CLOSED

    def test_cancelled_probe_does_not_wedge_the_breaker(self, tmp_path):
        clock = FakeClock(100.0)
        breaker = self._half_open_breaker(clock)
        supervisor, _ = _supervisor(tmp_path, clock=clock, breaker=breaker)
        token = CancelToken()
        token.request("cancel")
        record = _job(params={"steps": 3})
        supervisor.run(record, token)
        assert record.state == CANCELLED
        assert breaker.can_attempt()

    def test_drained_probe_does_not_wedge_the_breaker(self, tmp_path):
        from repro.errors import JobCancelled

        clock = FakeClock(100.0)
        breaker = self._half_open_breaker(clock)
        supervisor, _ = _supervisor(tmp_path, clock=clock, breaker=breaker)
        token = CancelToken()
        token.request("drain")
        record = _job(params={"steps": 3})
        with pytest.raises(JobCancelled):
            supervisor.run(record, token)
        assert breaker.can_attempt()
