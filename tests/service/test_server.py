"""End-to-end service tests over the real HTTP API.

Each test runs a real :class:`MeasurementService` on an ephemeral loopback
port inside ``asyncio.run`` and drives it with the blocking
:class:`ServiceClient` from a worker thread — the same transport and
client production uses.  Journal fsync is disabled for speed (crash-safety
of the fsync itself is covered in ``test_journal.py``).
"""

import asyncio
import contextlib

import pytest

from repro.service import (
    MeasurementService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    TenantQuota,
)


@contextlib.asynccontextmanager
async def service(tmp_path, **overrides):
    overrides.setdefault("journal_fsync", False)
    config = ServiceConfig(state_dir=tmp_path, **overrides)
    svc = MeasurementService(config)
    await svc.start()
    client = ServiceClient.from_state_dir(tmp_path)
    try:
        yield svc, client
    finally:
        if not svc._drained.is_set():
            await svc.shutdown()


async def hard_kill(svc):
    """SIGKILL stand-in: stop all service coroutines without any of the
    drain/journal-closing courtesy of shutdown()."""
    svc._stopping = True
    if svc._dispatcher is not None:
        svc._dispatcher.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await svc._dispatcher
    if svc._tasks:
        await asyncio.gather(*list(svc._tasks), return_exceptions=True)
    svc._server.close()
    await svc._server.wait_closed()
    svc._drained.set()  # suppress the context manager's graceful path


def submit_sync(client, **kwargs):
    kwargs.setdefault("kind", "synthetic")
    kwargs.setdefault("params", {"steps": 1})
    return client.submit(**kwargs)


class TestRoundTrip:
    def test_submit_wait_result(self, tmp_path):
        async def main():
            async with service(tmp_path) as (_svc, client):
                job = await asyncio.to_thread(
                    submit_sync, client, tenant="alice",
                    params={"steps": 2, "payload": "hello"},
                )
                assert job["state"] == "queued"
                done = await asyncio.to_thread(
                    client.wait, job["spec"]["job_id"], 20
                )
                assert done["state"] == "done"
                assert done["result"]["payload"] == "hello"
                assert done["result"]["confidence"] == "complete"

        asyncio.run(main())

    def test_resubmission_is_idempotent(self, tmp_path):
        async def main():
            async with service(tmp_path) as (_svc, client):
                first = await asyncio.to_thread(
                    submit_sync, client, tenant="a", job_id="a-fixed"
                )
                await asyncio.to_thread(client.wait, "a-fixed", 20)
                again = await asyncio.to_thread(
                    submit_sync, client, tenant="a", job_id="a-fixed"
                )
                # Same record, no second execution: the completed result
                # is returned as-is.
                assert again["spec"]["job_id"] == first["spec"]["job_id"]
                assert again["state"] == "done"
                jobs = await asyncio.to_thread(client.jobs)
                assert len(jobs) == 1

        asyncio.run(main())

    def test_client_errors_are_400_and_404_not_500(self, tmp_path):
        async def main():
            async with service(tmp_path) as (_svc, client):
                # Unknown job kind: the client's fault, a typed 400.
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(
                        client.submit, "a", "no-such-kind", {}
                    )
                assert excinfo.value.status == 400
                assert excinfo.value.error_type == "bad_request"
                # Malformed spec (empty tenant) is a 400 too.
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(
                        client.submit, "", "synthetic", {"steps": 1}
                    )
                assert excinfo.value.status == 400
                # Unknown job ids: 404 on inspect and on cancel alike.
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(client.job, "missing-id")
                assert excinfo.value.status == 404
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(client.cancel, "missing-id")
                assert excinfo.value.status == 404
                assert excinfo.value.error_type == "not_found"

        asyncio.run(main())

    def test_healthz_and_metrics(self, tmp_path):
        async def main():
            async with service(tmp_path) as (_svc, client):
                health = await asyncio.to_thread(client.healthz)
                assert health == {"status": "ok"}
                metrics = await asyncio.to_thread(client.metrics)
                stats = metrics["service"]
                assert stats["queued"] == 0
                assert stats["breaker"]["state"] == "closed"
                assert "rejected" in stats

        asyncio.run(main())

    def test_obs_enabled_round_trip(self, tmp_path):
        """With a live Observability the service must emit lifecycle
        events and expose the obs snapshot — the NULL default no-ops
        these paths, so they need their own coverage."""
        from repro.obs import Observability

        async def main():
            obs = Observability()
            config = ServiceConfig(state_dir=tmp_path, journal_fsync=False)
            svc = MeasurementService(config, obs=obs)
            await svc.start()
            client = ServiceClient.from_state_dir(tmp_path)
            try:
                job = await asyncio.to_thread(submit_sync, client, tenant="a")
                await asyncio.to_thread(
                    client.wait, job["spec"]["job_id"], 20
                )
                metrics = await asyncio.to_thread(client.metrics)
                assert "obs" in metrics
            finally:
                await svc.shutdown()
            kinds = [record[1] for record in obs.events.records()]
            assert "service.started" in kinds
            assert "service.job_finished" in kinds
            assert "service.stopped" in kinds

        asyncio.run(main())

    def test_cancel_queued_job(self, tmp_path):
        async def main():
            # One slot, occupied by a slow job: the second stays queued.
            async with service(tmp_path, max_concurrent=1) as (_svc, client):
                slow = await asyncio.to_thread(
                    submit_sync, client, tenant="a",
                    params={"steps": 100, "step_duration": 0.02},
                )
                queued = await asyncio.to_thread(
                    submit_sync, client, tenant="a"
                )
                job_id = queued["spec"]["job_id"]
                await asyncio.sleep(0.2)
                await asyncio.to_thread(client.cancel, job_id)
                record = await asyncio.to_thread(client.wait, job_id, 10)
                assert record["state"] == "cancelled"
                await asyncio.to_thread(
                    client.cancel, slow["spec"]["job_id"]
                )
                slow_final = await asyncio.to_thread(
                    client.wait, slow["spec"]["job_id"], 10
                )
                # Running job stopped cooperatively at a step boundary,
                # reporting a resumable partial.
                assert slow_final["state"] == "cancelled"
                assert slow_final["result"]["confidence"] == "partial"

        asyncio.run(main())


class TestOverloadShedding:
    def test_rate_quota_sheds_with_typed_429(self, tmp_path):
        async def main():
            quota = TenantQuota(jobs_per_second=0.001, job_burst=2.0)
            async with service(tmp_path, default_quota=quota) as (_svc, client):
                for _ in range(2):
                    await asyncio.to_thread(submit_sync, client, tenant="a")
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(submit_sync, client, tenant="a")
                assert excinfo.value.status == 429
                assert excinfo.value.error_type == "quota_exceeded"
                assert excinfo.value.retry_after > 0
                # Another tenant is unaffected.
                await asyncio.to_thread(submit_sync, client, tenant="b")
                stats = (await asyncio.to_thread(client.metrics))["service"]
                assert stats["rejected"] == {"tenant_rate": 1}

        asyncio.run(main())

    def test_bounded_tenant_queue_sheds_queue_full(self, tmp_path):
        async def main():
            quota = TenantQuota(
                jobs_per_second=1000.0, job_burst=1000.0, max_queued=1
            )
            async with service(
                tmp_path, default_quota=quota, max_concurrent=1,
                global_jobs_per_second=1000.0, global_job_burst=1000.0,
            ) as (_svc, client):
                await asyncio.to_thread(
                    submit_sync, client, tenant="a",
                    params={"steps": 100, "step_duration": 0.02},
                )
                await asyncio.sleep(0.2)  # first job now running
                await asyncio.to_thread(submit_sync, client, tenant="a")
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(submit_sync, client, tenant="a")
                assert excinfo.value.error_type == "queue_full"
                assert excinfo.value.status == 429

        asyncio.run(main())

    def test_draining_service_rejects_submissions(self, tmp_path):
        async def main():
            async with service(tmp_path) as (svc, client):
                svc.request_shutdown()
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(submit_sync, client, tenant="a")
                assert excinfo.value.status == 503
                health = await asyncio.to_thread(client.healthz)
                assert health == {"status": "draining"}

        asyncio.run(main())


class TestFairness:
    def test_honest_tenant_not_starved_by_abusive_one(self, tmp_path):
        async def main():
            quota = TenantQuota(
                jobs_per_second=1000.0, job_burst=1000.0, max_queued=100
            )
            async with service(
                tmp_path, default_quota=quota, max_concurrent=1,
                global_jobs_per_second=1000.0, global_job_burst=1000.0,
            ) as (_svc, client):
                abuser_ids = []
                for _ in range(10):
                    job = await asyncio.to_thread(
                        submit_sync, client, tenant="abuser",
                        params={"steps": 1, "step_duration": 0.02},
                    )
                    abuser_ids.append(job["spec"]["job_id"])
                honest = await asyncio.to_thread(
                    submit_sync, client, tenant="honest",
                    params={"steps": 1, "step_duration": 0.02},
                )
                done = await asyncio.to_thread(
                    client.wait, honest["spec"]["job_id"], 30
                )
                abuser_records = [
                    await asyncio.to_thread(client.job, job_id)
                    for job_id in abuser_ids
                ]
                finished_before_honest = sum(
                    1
                    for record in abuser_records
                    if record["finished_at"] is not None
                    and record["finished_at"] <= done["finished_at"]
                )
                # Round-robin: the honest job (submitted 11th) is served
                # after at most a rotation's worth of abusive jobs, not
                # after all ten.
                assert finished_before_honest <= 3

        asyncio.run(main())


class TestCrashRecovery:
    def test_sigkill_recovers_every_journaled_job(self, tmp_path):
        async def main():
            # Incarnation 1: one job completes, two are queued when the
            # process dies (dispatch frozen to keep them queued).
            async with service(tmp_path) as (svc, client):
                done_job = await asyncio.to_thread(
                    submit_sync, client, tenant="a"
                )
                await asyncio.to_thread(
                    client.wait, done_job["spec"]["job_id"], 20
                )
                svc._slots = 0  # freeze dispatch: next submissions stay queued
                queued_ids = []
                for n in range(2):
                    job = await asyncio.to_thread(
                        submit_sync, client, tenant="a", job_id=f"a-q{n}"
                    )
                    queued_ids.append(job["spec"]["job_id"])
                await hard_kill(svc)

            # Incarnation 2: replay recovers both queued jobs, keeps the
            # finished result, and duplicates nothing.
            async with service(tmp_path) as (svc2, client2):
                assert svc2.recovered_jobs == 2
                for job_id in queued_ids:
                    record = await asyncio.to_thread(client2.wait, job_id, 20)
                    assert record["state"] == "done"
                    assert record["recovered"]
                old = await asyncio.to_thread(
                    client2.job, done_job["spec"]["job_id"]
                )
                assert old["state"] == "done"
                jobs = await asyncio.to_thread(client2.jobs)
                assert len(jobs) == 3  # no duplicated, no lost jobs

        asyncio.run(main())

    def test_sigterm_drains_running_job_to_checkpoint(self, tmp_path):
        async def main():
            async with service(tmp_path) as (svc, client):
                job = await asyncio.to_thread(
                    submit_sync, client, tenant="a", job_id="a-drain",
                    params={"steps": 200, "step_duration": 0.02},
                )
                await asyncio.sleep(0.4)  # several steps checkpoint
                await svc.shutdown()  # the SIGTERM handler calls this

            async with service(tmp_path) as (svc2, client2):
                assert svc2.recovered_jobs == 1
                record = await asyncio.to_thread(
                    client2.job, job["spec"]["job_id"]
                )
                assert record["recovered"]
                # Resumes from the drain checkpoint, not from scratch.
                final = await asyncio.to_thread(
                    client2.wait, job["spec"]["job_id"], 60
                )
                assert final["state"] == "done"
                assert final["result"]["resumed_from"] > 0

        asyncio.run(main())


class TestDispatchBookkeeping:
    def test_single_dispatch_pass_respects_tenant_running_cap(self, tmp_path):
        """Regression: the running count must be visible to scheduler.pop
        within one dispatch pass, not only once each _run_job task has
        started — otherwise one tenant's burst fills every slot."""

        async def main():
            quota = TenantQuota(
                jobs_per_second=1000.0, job_burst=1000.0, max_queued=100
            )
            async with service(
                tmp_path, max_concurrent=4, max_running_per_tenant=1,
                default_quota=quota,
                global_jobs_per_second=1000.0, global_job_burst=1000.0,
            ) as (svc, client):
                svc._slots = 0  # freeze dispatch so all three jobs queue up
                for n in range(3):
                    await asyncio.to_thread(
                        submit_sync, client, tenant="a", job_id=f"a-{n}",
                        params={"steps": 20, "step_duration": 0.01},
                    )
                svc._slots = 4  # thaw: one pass now sees three queued jobs
                svc._wake.set()
                peak = 0
                for _ in range(20):
                    await asyncio.sleep(0.02)
                    peak = max(peak, svc._running.get("a", 0))
                assert peak <= 1
                for n in range(3):
                    record = await asyncio.to_thread(client.wait, f"a-{n}", 30)
                    assert record["state"] == "done"

        asyncio.run(main())

    def test_cancel_admitted_job_is_honored(self, tmp_path):
        """Regression: a cancel landing between scheduler.pop and the
        _run_job task starting must not be silently dropped."""

        async def main():
            config = ServiceConfig(state_dir=tmp_path, journal_fsync=False)
            svc = MeasurementService(config)
            record, created = svc.submit(
                {
                    "tenant": "a",
                    "kind": "synthetic",
                    "params": {"steps": 3},
                    "job_id": "a-admitted",
                }
            )
            assert created
            # Emulate the dispatcher's synchronous pop -> admit sequence.
            popped = svc.scheduler.pop(svc._running)
            assert popped is record
            assert popped.state == "admitted"
            token = svc._admit_for_run(popped)
            svc.cancel("a-admitted")  # lands while ADMITTED
            assert token.requested and token.reason == "cancel"
            await svc._run_job(popped, token)
            assert record.state == "cancelled"
            assert record.error["type"] == "job_cancelled"

        asyncio.run(main())


class TestRetention:
    def test_terminal_records_and_journal_stay_bounded(self, tmp_path):
        async def main():
            async with service(
                tmp_path,
                max_terminal_records_per_tenant=2,
                journal_compact_interval=6,
            ) as (svc, client):
                for n in range(6):
                    await asyncio.to_thread(
                        submit_sync, client, tenant="a", job_id=f"a-{n}"
                    )
                    await asyncio.to_thread(client.wait, f"a-{n}", 20)
                stats = (await asyncio.to_thread(client.metrics))["service"]
                # Only the two newest terminal records survive.
                assert stats["jobs_total"] == 2
                assert stats["evicted_records_total"] == 4
                assert stats["journal"]["compactions_total"] >= 1
                jobs = await asyncio.to_thread(client.jobs)
                assert sorted(j["job_id"] for j in jobs) == ["a-4", "a-5"]
                # An evicted job id reads as 404 now.
                with pytest.raises(ServiceClientError) as excinfo:
                    await asyncio.to_thread(client.job, "a-0")
                assert excinfo.value.status == 404
                # The journal itself was compacted to the survivors.
                lines = [
                    line
                    for line in svc.journal_path.read_text(
                        encoding="utf-8"
                    ).splitlines()
                    if line.strip()
                ]
                assert len(lines) <= 2 + 3 * 2  # survivors + a few appends

        asyncio.run(main())


class TestDeadlines:
    def test_deadline_times_out_with_partial_result(self, tmp_path):
        async def main():
            async with service(tmp_path) as (_svc, client):
                job = await asyncio.to_thread(
                    submit_sync, client, tenant="a",
                    params={"steps": 1000, "step_duration": 0.01},
                    deadline=0.5,
                )
                record = await asyncio.to_thread(
                    client.wait, job["spec"]["job_id"], 30
                )
                assert record["state"] == "timed_out"
                assert record["partial"]
                assert record["result"]["confidence"] == "partial"
                assert 0 < record["result"]["completed_steps"] < 1000
                assert record["error"]["type"] == "job_timeout"

        asyncio.run(main())
