"""Tests for the Section 3 use-case security analyses."""

import networkx as nx
import pytest

from repro.analysis.security import (
    critical_nodes,
    eclipse_targets,
    neighbor_fingerprints,
    partition_resilience_score,
)
from repro.errors import AnalysisError


@pytest.fixture
def barbell():
    """Two K4 cliques joined through one bridge node."""
    graph = nx.Graph()
    left = ["l0", "l1", "l2", "l3"]
    right = ["r0", "r1", "r2", "r3"]
    for group in (left, right):
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                graph.add_edge(a, b)
    graph.add_edge("l0", "bridge")
    graph.add_edge("bridge", "r0")
    return graph


class TestEclipseTargets:
    def test_low_degree_nodes_flagged(self, barbell):
        targets = eclipse_targets(barbell, max_degree=2)
        assert [t.node for t in targets] == ["bridge"]
        assert targets[0].attack_cost == 2
        assert targets[0].neighbors == ("l0", "r0")

    def test_sorted_cheapest_first(self):
        graph = nx.star_graph(4)
        graph.add_edge(1, 2)
        targets = eclipse_targets(graph, max_degree=3)
        costs = [t.attack_cost for t in targets]
        assert costs == sorted(costs)

    def test_no_targets_in_dense_graph(self):
        graph = nx.complete_graph(8)
        assert eclipse_targets(graph, max_degree=3) == []

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError):
            eclipse_targets(nx.Graph())


class TestCriticalNodes:
    def test_bridge_is_cut_node_with_impact(self, barbell):
        report = critical_nodes(barbell)
        assert "bridge" in report.cut_nodes
        # Removing the bridge strands one clique (4 nodes).
        assert report.partition_impact["bridge"] == 4
        assert "cut nodes" in report.summary()

    def test_endpoints_of_bridge_are_cut_nodes(self, barbell):
        report = critical_nodes(barbell)
        assert {"l0", "r0"} <= set(report.cut_nodes)

    def test_no_cut_nodes_in_cycle(self):
        report = critical_nodes(nx.cycle_graph(6))
        assert report.cut_nodes == []

    def test_supernodes_by_degree_quantile(self):
        graph = nx.star_graph(9)  # hub degree 9, leaves degree 1
        report = critical_nodes(graph, supernode_quantile=0.9)
        assert report.supernodes == [0]


class TestFingerprints:
    def test_star_leaves_collide(self):
        report = neighbor_fingerprints(nx.star_graph(4))
        # All 4 leaves share the fingerprint {hub}.
        assert report.unique_fingerprints == 2
        assert len(report.collision_groups) == 1
        assert report.uniqueness == pytest.approx(1 / 5)

    def test_path_nodes_mostly_unique(self):
        report = neighbor_fingerprints(nx.path_graph(6))
        assert report.uniqueness == 1.0
        assert report.collision_groups == ()

    def test_summary_format(self):
        text = neighbor_fingerprints(nx.path_graph(4)).summary()
        assert "fingerprintable" in text


class TestPartitionResilience:
    def test_complete_graph_fully_resilient(self):
        assert partition_resilience_score(nx.complete_graph(10), removals=3) == 1.0

    def test_star_collapses(self):
        # Removing the hub disconnects every remaining leaf.
        score = partition_resilience_score(nx.star_graph(9), removals=1)
        assert score == pytest.approx(1 / 9)

    def test_too_small_graph_rejected(self):
        with pytest.raises(AnalysisError):
            partition_resilience_score(nx.path_graph(3), removals=3)

    def test_low_modularity_graph_beats_modular_graph(self):
        """The paper's implication: low modularity -> partition resilience."""
        modular = nx.barbell_graph(8, 1)  # two dense cliques, thin bridge
        uniform = nx.gnm_random_graph(17, modular.number_of_edges(), seed=4)
        if not nx.is_connected(uniform):
            comps = list(nx.connected_components(uniform))
            for a, b in zip(comps, comps[1:]):
                uniform.add_edge(next(iter(a)), next(iter(b)))
        assert partition_resilience_score(
            uniform, removals=2
        ) >= partition_resilience_score(modular, removals=2)
