"""Tests for propagation-delay profiling (use cases 4/5)."""

import pytest

from repro.analysis.propagation import (
    measure_block_propagation,
    measure_tx_propagation,
    rank_origins_by_delay,
)
from repro.errors import AnalysisError
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import INTRINSIC_GAS


@pytest.fixture
def line_of_five():
    """hub -- n1 -- n2 -- n3 -- n4 (strictly increasing hop distance)."""
    network = Network(seed=81)
    config = NodeConfig(policy=GETH.scaled(64))
    ids = ["hub", "n1", "n2", "n3", "n4"]
    for node_id in ids:
        network.create_node(node_id, config)
    for a, b in zip(ids, ids[1:]):
        network.connect(a, b)
    network.run(1.0)  # drain handshakes
    return network


@pytest.fixture
def hub_and_leaf():
    """A hub connected to everyone and a leaf connected to one node."""
    network = Network(seed=82)
    config = NodeConfig(policy=GETH.scaled(64))
    ids = [f"n{i}" for i in range(8)]
    for node_id in ids:
        network.create_node(node_id, config)
    network.create_node("hub", NodeConfig(policy=GETH.scaled(64), max_peers=None))
    network.create_node("leaf", config)
    for i, node_id in enumerate(ids):
        network.connect("hub", node_id, force=True)
        network.connect(node_id, ids[(i + 1) % len(ids)])
    network.connect("leaf", ids[0])
    network.run(1.0)
    return network


class TestTxPropagation:
    def test_full_coverage_on_connected_network(self, line_of_five):
        profile = measure_tx_propagation(line_of_five, "hub", probes=2)
        assert profile.coverage == 1.0
        assert profile.probes == 2

    def test_delay_monotone_with_hops(self, line_of_five):
        profile = measure_tx_propagation(line_of_five, "hub", probes=3)
        assert profile.node_median("n1") < profile.node_median("n4")

    def test_percentiles_ordered(self, line_of_five):
        profile = measure_tx_propagation(line_of_five, "hub", probes=3)
        assert profile.median_delay() <= profile.percentile_delay(0.9)
        assert "median" in profile.summary()

    def test_empty_profile_raises(self):
        from repro.analysis.propagation import PropagationProfile

        with pytest.raises(AnalysisError):
            PropagationProfile(origin="x").median_delay()


class TestBlockPropagation:
    def test_blocks_reach_everyone(self, line_of_five):
        line_of_five.chain.gas_limit = 2 * INTRINSIC_GAS
        profile = measure_block_propagation(line_of_five, "hub", blocks=2)
        assert profile.coverage == 1.0

    def test_block_delay_monotone_with_hops(self, line_of_five):
        profile = measure_block_propagation(line_of_five, "hub", blocks=2)
        assert profile.node_median("n1") < profile.node_median("n4")


class TestRanking:
    def test_hub_beats_leaf(self, hub_and_leaf):
        """Use case 4/5: the well-connected origin has lower median delay."""
        ranked = rank_origins_by_delay(hub_and_leaf, ["leaf", "hub"], probes=2)
        assert ranked[0].origin == "hub"
        assert ranked[0].median_delay() < ranked[1].median_delay()
