"""Tests for graph metrics, baselines, communities, degrees and rendering."""

import networkx as nx
import pytest

from repro.analysis.communities import community_table, detect_communities
from repro.analysis.degrees import degree_distribution
from repro.analysis.metrics import compute_metrics, count_maximal_cliques
from repro.analysis.randomgraphs import (
    comparison_table,
    metrics_for_baselines,
    modularity_lower_than_baselines,
)
from repro.analysis.report import render_comparison, render_table
from repro.errors import AnalysisError


@pytest.fixture
def sample_graph():
    """A 30-node connected graph with community structure."""
    graph = nx.random_partition_graph([10, 10, 10], 0.8, 0.05, seed=3)
    if not nx.is_connected(graph):
        components = list(nx.connected_components(graph))
        for a, b in zip(components, components[1:]):
            graph.add_edge(next(iter(a)), next(iter(b)))
    return graph


class TestMetrics:
    def test_known_values_on_cycle(self):
        graph = nx.cycle_graph(6)
        metrics = compute_metrics(graph, "cycle")
        assert metrics.diameter == 3
        assert metrics.radius == 3
        assert metrics.periphery_size == 6
        assert metrics.center_size == 6
        assert metrics.clustering_coefficient == 0.0
        assert metrics.transitivity == 0.0

    def test_known_values_on_star(self):
        graph = nx.star_graph(5)  # hub + 5 leaves
        metrics = compute_metrics(graph, "star")
        assert metrics.diameter == 2
        assert metrics.radius == 1
        assert metrics.center_size == 1
        assert metrics.periphery_size == 5

    def test_complete_graph_cliques(self):
        graph = nx.complete_graph(5)
        metrics = compute_metrics(graph, "k5")
        assert metrics.clique_count == 1  # one maximal clique
        assert metrics.clustering_coefficient == 1.0

    def test_disconnected_graph_uses_largest_component(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 0)])
        graph.add_node("isolated")
        metrics = compute_metrics(graph, "mixed")
        assert metrics.diameter == 1
        assert metrics.n_nodes == 4

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError):
            compute_metrics(nx.Graph())

    def test_as_row_has_all_paper_statistics(self, sample_graph):
        row = compute_metrics(sample_graph).as_row()
        for key in (
            "Diameter",
            "Periphery size",
            "Radius",
            "Center size",
            "Eccentricity",
            "Clustering coefficient",
            "Transitivity",
            "Degree assortativity",
            "Clique number",
            "Modularity",
        ):
            assert key in row

    def test_clique_cap(self):
        graph = nx.complete_bipartite_graph(6, 6)
        assert count_maximal_cliques(graph, cap=5) == 5


class TestBaselines:
    def test_baseline_trio_with_matched_sizes(self, sample_graph):
        baselines = metrics_for_baselines(sample_graph, trials=2, seed=1)
        assert set(baselines) == {"ER", "CM", "BA"}
        for averaged in baselines.values():
            assert len(averaged.samples) == 2
            assert averaged.samples[0].n_nodes == sample_graph.number_of_nodes()

    def test_comparison_table_structure(self, sample_graph):
        table = comparison_table(sample_graph, name="Test", trials=2, seed=1)
        assert list(table) == ["Test", "ER", "CM", "BA"]
        assert "Modularity" in table["ER"]

    def test_modularity_comparison_helper(self):
        table = {
            "Measured": {"Modularity": 0.05},
            "ER": {"Modularity": 0.16},
            "CM": {"Modularity": 0.15},
        }
        assert modularity_lower_than_baselines(table)
        table["Measured"]["Modularity"] = 0.2
        assert not modularity_lower_than_baselines(table)


class TestCommunities:
    def test_partition_covers_graph(self, sample_graph):
        rows = detect_communities(sample_graph, seed=1)
        assert sum(row.n_nodes for row in rows) == sample_graph.number_of_nodes()

    def test_planted_partition_recovered(self, sample_graph):
        rows = detect_communities(sample_graph, seed=1)
        assert len(rows) == 3
        assert all(8 <= row.n_nodes <= 12 for row in rows)

    def test_rows_sorted_by_size(self, sample_graph):
        rows = detect_communities(sample_graph, seed=1)
        sizes = [row.n_nodes for row in rows]
        assert sizes == sorted(sizes, reverse=True)
        assert [row.index for row in rows] == list(range(1, len(rows) + 1))

    def test_density_definition(self):
        graph = nx.complete_graph(4)  # one dense community
        rows = detect_communities(graph, seed=1)
        total_intra = sum(row.intra_edges for row in rows)
        assert total_intra <= 6
        if len(rows) == 1:
            assert rows[0].density == 1.0

    def test_inter_edges_count_directed_stubs(self):
        graph = nx.Graph()
        # Two triangles joined by one bridge.
        graph.add_edges_from([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)])
        rows = detect_communities(graph, seed=1)
        assert sum(row.inter_edges for row in rows) == 2  # bridge seen twice

    def test_table_rendering(self, sample_graph):
        rows = detect_communities(sample_graph, seed=1)
        text = community_table(rows)
        assert "#nodes" in text
        assert len(text.splitlines()) == len(rows) + 2

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError):
            detect_communities(nx.Graph())


class TestDegrees:
    def test_histogram_and_stats(self):
        graph = nx.star_graph(4)
        dist = degree_distribution(graph)
        assert dist.histogram == {1: 4, 4: 1}
        assert dist.max_degree == 4
        assert dist.average == pytest.approx(8 / 5)

    def test_shares(self):
        graph = nx.star_graph(4)
        dist = degree_distribution(graph)
        assert dist.share_with_degree(1) == 0.8
        assert dist.share_at_most(1) == 0.8
        assert dist.share_at_most(4) == 1.0

    def test_range_and_buckets(self):
        graph = nx.complete_graph(6)  # all degree 5
        dist = degree_distribution(graph)
        assert dist.nodes_in_range(5, 5) == 6
        assert dist.buckets([0, 5, 10]) == [("0-5", 0), ("5-10", 6)]

    def test_ascii_plot(self):
        dist = degree_distribution(nx.path_graph(5))
        plot = dist.ascii_plot()
        assert "deg" in plot and "#" in plot

    def test_empty_graph_rejected(self):
        with pytest.raises(AnalysisError):
            degree_distribution(nx.Graph())


class TestMeasurementDiff:
    def test_diff_lists_both_error_kinds(self):
        from repro.analysis.report import render_measurement_diff

        truth = {frozenset(("a", "b")), frozenset(("b", "c"))}
        measured = {frozenset(("a", "b")), frozenset(("a", "c"))}
        text = render_measurement_diff(measured, truth)
        assert "missed=1" in text and "phantom=1" in text
        assert "MISSED   b -- c" in text
        assert "PHANTOM  a -- c" in text

    def test_diff_truncates_long_lists(self):
        from repro.analysis.report import render_measurement_diff

        truth = {frozenset((f"n{i}", f"m{i}")) for i in range(30)}
        text = render_measurement_diff(set(), truth, limit=5)
        assert "and 25 more" in text


class TestReport:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = render_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_render_empty(self):
        assert "(empty)" in render_table([])

    def test_render_comparison_rows_are_statistics(self):
        table = {
            "Measured": {"Diameter": 5, "Modularity": 0.06},
            "ER": {"Diameter": 3.0, "Modularity": 0.16},
        }
        text = render_comparison(table, title="Table 4")
        assert "Diameter" in text
        assert "Measured" in text
        assert "ER" in text
