"""Empirical check of Theorem C.2: with conditions V1/V2 verified, the
blocks produced with the measurement running contain exactly the same
third-party transactions as the deterministic hypothetical world without
measurement."""


from repro.core.config import MeasurementConfig
from repro.core.noninterference import check_conditions, compare_worlds
from repro.core.primitive import measure_one_link
from repro.eth.chain import Chain
from repro.eth.miner import Miner
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import INTRINSIC_GAS, gwei
from repro.netgen.workloads import prefill_mempools


def build_world(measure: bool, seed: int = 55):
    """One deterministic world: 5 nodes, one miner producing small full
    blocks from high-priced background txs, optional measurement."""
    network = Network(seed=seed)
    network.chain = Chain(gas_limit=8 * INTRINSIC_GAS)
    config = NodeConfig(policy=GETH.scaled(256))
    ids = [f"n{i}" for i in range(5)]
    for node_id in ids:
        network.create_node(node_id, config)
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            network.connect(a, b)
    # Background pool: plenty of transactions priced well above Y so every
    # block is full of >Y0 transactions (V1 and V2 hold by construction).
    prefill_mempools(network, median_price=gwei(10.0), sigma=0.2)
    supernode = Supernode.join(network)
    miner = Miner(
        network.node("n0"),
        network.chain,
        block_interval=6.0,
        min_gas_price=gwei(2.0),
        poisson=False,
    )
    miner.start(initial_delay=6.0)

    senders = set()
    if measure:
        config_m = MeasurementConfig.for_policy(
            GETH.scaled(256), gas_price_y=gwei(1.0)
        )
        report = measure_one_link(network, supernode, "n1", "n2", config_m)
        senders.update(report.measurement_senders)
        assert report.connected
    network.run(60.0 - network.sim.now)
    return network, senders


class TestTwoWorlds:
    def test_blocks_identical_modulo_measurement_senders(self):
        measured_net, senders = build_world(measure=True)
        hypothetical_net, _ = build_world(measure=False)
        comparison = compare_worlds(
            measured_net.chain.blocks,
            hypothetical_net.chain.blocks,
            ignore_senders=senders,
        )
        assert comparison.blocks_compared >= 5
        assert comparison.identical, comparison.summary()

    def test_v1_v2_verified_in_measured_world(self):
        measured_net, _ = build_world(measure=True)
        report = check_conditions(
            measured_net.chain, t1=0.0, t2=30.0, y0=gwei(1.0), expiry=30.0
        )
        assert report.non_interfering, report.summary()

    def test_violation_detected_when_y_too_high(self):
        """If Y0 were set above included prices, V2 must flag it — the
        monitor is not a rubber stamp."""
        measured_net, _ = build_world(measure=True)
        report = check_conditions(
            measured_net.chain, t1=0.0, t2=30.0, y0=gwei(1000.0), expiry=30.0
        )
        assert not report.v2_prices_above_y0
