"""End-to-end determinism: the whole pipeline is a pure function of the
seed. This is what makes every number in EXPERIMENTS.md reproducible."""

from repro.core.campaign import TopoShot
from repro.netgen.ethereum import quick_network
from repro.netgen.services import MainnetSpec, mainnet_like
from repro.netgen.workloads import prefill_mempools


def run_campaign(seed: int):
    network = quick_network(n_nodes=14, seed=seed)
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    measurement = shot.measure_network()
    return measurement, network


class TestEndToEndDeterminism:
    def test_identical_seeds_identical_measurements(self):
        first, net_a = run_campaign(seed=123)
        second, net_b = run_campaign(seed=123)
        assert first.edges == second.edges
        assert first.score == second.score
        assert first.duration == second.duration
        assert net_a.messages_sent == net_b.messages_sent
        assert net_a.sim.executed_events == net_b.sim.executed_events

    def test_different_seeds_differ(self):
        first, _ = run_campaign(seed=123)
        second, _ = run_campaign(seed=124)
        assert first.edges != second.edges

    def test_mainnet_generation_deterministic(self):
        net_a, dir_a = mainnet_like(MainnetSpec(n_regular=15, seed=5))
        net_b, dir_b = mainnet_like(MainnetSpec(n_regular=15, seed=5))
        assert net_a.ground_truth_edges() == net_b.ground_truth_edges()
        assert dir_a.members == dir_b.members
