"""Golden-fingerprint determinism tests for the simulation hot path.

The performance work on the engine, node gossip path and mempool is only
acceptable if it is *behaviour-preserving*: the same seed must produce the
same event sequence and the same measured topology, bit for bit. These
tests pin SHA-256 fingerprints of

- the edge set a full TopoShot campaign measures on a 24-node network, and
- the complete event trace of a 25-transaction propagation run on a
  40-node network (time, kind and label of every executed event).

Any change to event ordering, RNG draw sequence, latency sampling, relay
policy or trace labelling shows up here as a digest mismatch. If you
change behaviour *deliberately* (for example a new relay rule), re-derive
the constants and say so in the commit — never update them to paper over
an unintended diff.

The fingerprints are stable across CPython versions because the simulation
draws only on ``random()``/``getrandbits()``-based Mersenne-Twister
primitives and blake2b hashing, both of which are version-stable.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.campaign import TopoShot
from repro.eth.account import Wallet
from repro.eth.transaction import TransactionFactory, gwei
from repro.netgen.ethereum import quick_network
from repro.sim.tracing import Tracer

EDGE_DIGEST = "fe2ce0906b22c34574950815ffbfa79c1a72e2c6d162e096b44f57f2f491a703"
N_EDGES = 184

TRACE_DIGEST = "80ca30d383e2b28292a54049bcbb4c9d0d972b16235ef9f2c456f8b889cb3c7e"
TRACE_LEN = 9262


def campaign_edge_fingerprint(n_nodes: int = 24, seed: int = 7):
    """Digest of the edge set a full measurement campaign recovers."""
    network = quick_network(n_nodes=n_nodes, seed=seed)
    shot = TopoShot.attach(network)
    measurement = shot.measure_network()
    edges = sorted(sorted(edge) for edge in measurement.edges)
    digest = hashlib.sha256(json.dumps(edges).encode("utf-8")).hexdigest()
    return digest, len(edges)


def propagation_trace_fingerprint(n_nodes: int = 40, seed: int = 3, txs: int = 25):
    """Digest of every executed event of a traced propagation scenario."""
    network = quick_network(n_nodes=n_nodes, seed=seed)
    network.sim.tracer = Tracer()
    wallet = Wallet("golden")
    factory = TransactionFactory()
    ids = network.measurable_node_ids()
    for index in range(txs):
        network.node(ids[index % len(ids)]).submit_transaction(
            factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0) + index)
        )
    network.settle()
    lines = "\n".join(
        f"{record.time:.9f}|{record.kind}|{record.detail}"
        for record in network.sim.tracer
    )
    digest = hashlib.sha256(lines.encode("utf-8")).hexdigest()
    return digest, len(network.sim.tracer)


class TestGoldenFingerprints:
    def test_measured_edge_set_is_pinned(self):
        digest, n_edges = campaign_edge_fingerprint()
        assert n_edges == N_EDGES
        assert digest == EDGE_DIGEST

    def test_propagation_trace_is_pinned(self):
        digest, trace_len = propagation_trace_fingerprint()
        assert trace_len == TRACE_LEN
        assert digest == TRACE_DIGEST

    def test_trace_fingerprint_is_reproducible_in_process(self):
        """Two fresh simulations in one process agree byte for byte."""
        first = propagation_trace_fingerprint(n_nodes=20, seed=5, txs=8)
        second = propagation_trace_fingerprint(n_nodes=20, seed=5, txs=8)
        assert first == second
