"""Failure injection: measurement behaviour under hostile conditions.

Each test deliberately violates one of TopoShot's preconditions and checks
the tool degrades the way the paper predicts — never with false positives.
"""


from repro.core.campaign import TopoShot
from repro.core.config import MeasurementConfig
from repro.core.primitive import LinkProbeOutcome, measure_one_link
from repro.eth.miner import Miner
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import INTRINSIC_GAS, gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def triangle(seed=61, capacity=128):
    network = Network(seed=seed)
    config = NodeConfig(policy=GETH.scaled(capacity))
    for name in ("a", "b", "c"):
        network.create_node(name, config)
    network.connect("a", "b")
    network.connect("b", "c")
    network.connect("a", "c")
    return network


class TestEmptyPools:
    def test_flood_self_fills_an_empty_pool(self):
        """With Z >= L the flood itself fills an empty pool to the brim and
        then evicts txC — consistent with Figure 7's finding that recall
        stays 100% whenever mempool_size - pending <= Z. The under-loaded
        testnet problem (Section 6.2.1) is therefore *mining*, covered by
        TestMinedSeed below, not eviction."""
        network = triangle()
        supernode = Supernode.join(network)
        config = MeasurementConfig.for_policy(
            GETH.scaled(128), gas_price_y=gwei(1.0)
        )
        report = measure_one_link(network, supernode, "a", "b", config)
        assert report.connected

    def test_undersized_flood_on_empty_pool_fails_closed(self):
        """...but a flood smaller than the pool's free space never fills
        it, no eviction fires, and the probe reports a setup failure
        (the Figure 7 cliff: recall 0 when mempool - pending > Z)."""
        network = triangle()
        supernode = Supernode.join(network)
        config = MeasurementConfig.for_policy(
            GETH.scaled(128), gas_price_y=gwei(1.0)
        ).with_future_count(32)
        report = measure_one_link(network, supernode, "a", "b", config)
        assert not report.connected
        assert report.outcome in (
            LinkProbeOutcome.SETUP_FAILED_A,
            LinkProbeOutcome.SETUP_FAILED_B,
        )

    def test_background_fill_restores_measurement(self):
        network = triangle()
        prefill_mempools(network, median_price=gwei(1.0))
        supernode = Supernode.join(network)
        report = measure_one_link(network, supernode, "a", "b")
        assert report.connected


class TestMinedSeed:
    def test_aggressive_miner_kills_txc_and_measurement_fails_closed(self):
        """When txC is mined mid-measurement (the 'always included in the
        next block' Ropsten problem), the probe reports a setup failure,
        not a bogus edge."""
        network = triangle()
        network.chain.gas_limit = 400 * INTRINSIC_GAS  # swallow everything
        prefill_mempools(network, median_price=gwei(1.0))
        supernode = Supernode.join(network)
        miner = Miner(network.node("c"), network.chain, block_interval=2.0,
                      poisson=False)
        miner.start(initial_delay=2.0)
        config = MeasurementConfig.for_policy(GETH.scaled(128))
        report = measure_one_link(network, supernode, "a", "b", config)
        assert not report.connected  # fails closed

    def test_price_floor_miner_leaves_txc_alone(self):
        """With block space scarce (full blocks above Y), measurement
        proceeds normally while mining runs."""
        network = triangle(capacity=256)
        network.chain.gas_limit = 4 * INTRINSIC_GAS
        prefill_mempools(network, median_price=gwei(10.0), sigma=0.2)
        supernode = Supernode.join(network)
        miner = Miner(
            network.node("c"),
            network.chain,
            block_interval=5.0,
            min_gas_price=gwei(2.0),
            poisson=False,
        )
        miner.start(initial_delay=5.0)
        config = MeasurementConfig.for_policy(
            GETH.scaled(256), gas_price_y=gwei(1.0)
        )
        report = measure_one_link(network, supernode, "a", "b", config)
        assert report.connected


class TestHostileNetworks:
    def test_nethermind_heavy_network_loses_isolation_precision(self):
        """Ablation: R=0 clients (unfiltered!) re-propagate txA and can
        manufacture false positives — why TopoShot targets only R>0
        clients and why the paper calls R=0 a flaw."""
        network = quick_network(
            n_nodes=16, seed=62, nethermind_fraction=0.4
        )
        prefill_mempools(network)
        shot = TopoShot.attach(network)
        # Bypass pre-processing: measure everyone, including R=0 clients.
        measurement = shot.measure_network(preprocess=False)
        assert measurement.score.precision < 1.0

    def test_preprocessing_helps_but_cannot_fix_r0_bystanders(self):
        """Pre-processing removes R=0 clients from the *target* set, but
        they remain third-party relays whose equal-price replacement still
        leaks txA — a residual false-positive channel the paper's 100%
        precision claim implicitly relies on R=0 clients being rare
        (1.5% of the 2021 mainnet)."""
        false_positives = 0
        for seed in (63, 64, 65):
            network = quick_network(
                n_nodes=16, seed=seed, nethermind_fraction=0.4
            )
            prefill_mempools(network)
            shot = TopoShot.attach(network)
            filtered = shot.measure_network(preprocess=True)
            false_positives += filtered.score.false_positives
            # The damage stays bounded even at this hostile share.
            assert filtered.score.precision >= 0.85, seed
        # Targets are clean, yet the R=0 *relays* still leak txA
        # transactions somewhere in the sweep.
        assert false_positives > 0

    def test_precision_perfect_at_realistic_r0_share(self):
        """At the mainnet's actual ~1.5% Nethermind share, precision holds."""
        network = quick_network(
            n_nodes=16, seed=64, nethermind_fraction=0.015
        )
        prefill_mempools(network)
        shot = TopoShot.attach(network)
        measurement = shot.measure_network()
        assert measurement.score.precision == 1.0

    def test_future_forwarders_without_filtering_hurt(self):
        network = quick_network(
            n_nodes=16, seed=63, fraction_future_forwarders=0.3
        )
        prefill_mempools(network)
        shot = TopoShot.attach(network)
        unfiltered = shot.measure_network(preprocess=False)
        # Forwarded floods leak evictions onto third parties; at minimum
        # the measurement loses its clean behaviour — and filtering fixes it.
        network2 = quick_network(
            n_nodes=16, seed=63, fraction_future_forwarders=0.3
        )
        prefill_mempools(network2)
        shot2 = TopoShot.attach(network2)
        filtered = shot2.measure_network(preprocess=True)
        assert filtered.score.precision == 1.0
        assert filtered.score.precision >= unfiltered.score.precision


class TestChurnDuringMeasurement:
    def test_disconnection_mid_measurement_fails_closed(self):
        """A link that disappears between Step 1 and Step 3 must not be
        reported (the paper's >95%-stable-peers observation bounds how
        often this happens in practice)."""
        network = triangle()
        prefill_mempools(network, median_price=gwei(1.0))
        supernode = Supernode.join(network)
        config = MeasurementConfig.for_policy(GETH.scaled(128))
        # Disconnect right after the flood wait.
        network.sim.schedule(
            config.flood_wait + 0.5, lambda: network.disconnect("a", "b")
        )
        report = measure_one_link(network, supernode, "a", "b", config)
        assert not report.connected
