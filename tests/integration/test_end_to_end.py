"""End-to-end integration: full campaign -> graph -> analysis pipeline."""

import networkx as nx
import pytest

from repro import TopoShot, quick_network
from repro.analysis.communities import detect_communities
from repro.analysis.degrees import degree_distribution
from repro.analysis.metrics import compute_metrics
from repro.analysis.randomgraphs import comparison_table
from repro.netgen.workloads import prefill_mempools


@pytest.fixture(scope="module")
def campaign_result():
    """One full measured campaign shared by the pipeline assertions."""
    network = quick_network(n_nodes=20, seed=99)
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    measurement = shot.measure_network()
    return network, measurement


class TestFullPipeline:
    def test_campaign_precision_is_perfect(self, campaign_result):
        _, measurement = campaign_result
        assert measurement.score.precision == 1.0

    def test_campaign_recall_is_high(self, campaign_result):
        _, measurement = campaign_result
        assert measurement.score.recall >= 0.85

    def test_measured_graph_feeds_metrics(self, campaign_result):
        _, measurement = campaign_result
        metrics = compute_metrics(measurement.graph, "measured")
        assert metrics.n_nodes == len(measurement.node_ids)
        assert metrics.diameter >= 1

    def test_measured_graph_feeds_comparison_table(self, campaign_result):
        _, measurement = campaign_result
        table = comparison_table(measurement.graph, "Measured", trials=2, seed=1)
        assert set(table) == {"Measured", "ER", "CM", "BA"}

    def test_measured_graph_feeds_communities(self, campaign_result):
        _, measurement = campaign_result
        rows = detect_communities(measurement.graph, seed=1)
        assert sum(r.n_nodes for r in rows) == len(measurement.node_ids)

    def test_measured_graph_feeds_degrees(self, campaign_result):
        _, measurement = campaign_result
        dist = degree_distribution(measurement.graph)
        assert dist.n_nodes == len(measurement.node_ids)

    def test_measured_topology_structurally_close_to_truth(self, campaign_result):
        network, measurement = campaign_result
        truth = network.ground_truth_graph()
        truth_sub = truth.subgraph(measurement.node_ids)
        measured_avg = 2 * measurement.graph.number_of_edges() / len(
            measurement.node_ids
        )
        true_avg = 2 * truth_sub.number_of_edges() / truth_sub.number_of_nodes()
        assert measured_avg >= 0.85 * true_avg

    def test_public_api_roundtrip(self):
        """The README quickstart must keep working verbatim."""
        from repro import quick_network as qn

        net = qn(n_nodes=8, seed=7)
        prefill_mempools(net)
        shot = TopoShot.attach(net)
        result = shot.measure_network()
        assert isinstance(result.graph, nx.Graph)
        assert result.graph.number_of_edges() > 0
