"""Smoke tests: every shipped example must run end to end.

Examples are executed in-process via runpy (same interpreter, no
subprocess overhead) with their ``main()`` entry points.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv=()):
    path = EXAMPLES_DIR / name
    old_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        return runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "TopoShot quickstart" in out
        assert "precision=1.000" in out
        assert "serial probe" in out

    def test_client_profiling(self, capsys):
        run_example("client_profiling.py")
        out = capsys.readouterr().out
        assert "5120" in out  # Geth L recovered at full scale
        assert "NO (R=0 flaw)" in out

    def test_baseline_comparison(self, capsys):
        run_example("baseline_comparison.py")
        out = capsys.readouterr().out
        assert "TopoShot" in out
        assert "FIND_NODE" in out

    def test_testnet_topology_small(self, capsys):
        run_example("testnet_topology.py", argv=["--small"])
        out = capsys.readouterr().out
        assert "modularity below every random baseline" in out
        assert "Communities" in out

    def test_propagation_qos(self, capsys):
        run_example("propagation_qos.py")
        out = capsys.readouterr().out
        assert "Use case 5" in out
        assert "fastest relay" in out

    def test_security_audit(self, capsys):
        run_example("security_audit.py")
        out = capsys.readouterr().out
        assert "Use case 1" in out
        assert "fingerprintable" in out

    def test_attack_playbook(self, capsys):
        run_example("attack_playbook.py")
        out = capsys.readouterr().out
        assert "topology knowledge decisive: True" in out
        assert "DETER" in out
        assert "CORRECT" in out

    def test_topology_monitoring(self, capsys):
        run_example("topology_monitoring.py")
        out = capsys.readouterr().out
        assert "[adaptive]" in out
        assert "stable core" in out
        assert "churn" in out

    def test_mainnet_critical(self, capsys):
        run_example("mainnet_critical.py")
        out = capsys.readouterr().out
        assert "non-interference VERIFIED" in out
        assert "SrvM1  -- SrvM1  : -" in out  # the paper's exception
        assert "SrvR1  -- SrvM1  : X" in out
