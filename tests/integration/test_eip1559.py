"""Appendix E end-to-end: TopoShot on an EIP-1559 fee-market network.

"As long as we ensure the max fee in measurement transactions is above the
base fee, the measurement process is not affected by the presence of
EIP1559."
"""


from repro.core.config import MeasurementConfig
from repro.core.primitive import measure_one_link
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import gwei
from repro.netgen.workloads import prefill_mempools


def fee_market_network(seed=71, base_fee=gwei(0.5)):
    network = Network(seed=seed)
    policy = GETH.scaled(128).with_base_fee_enforcement()
    config = NodeConfig(policy=policy)
    ids = [f"n{i}" for i in range(6)]
    for node_id in ids:
        network.create_node(node_id, config)
    for i in range(len(ids)):
        network.connect(ids[i], ids[(i + 1) % len(ids)])
    network.connect("n0", "n3")
    for node_id in ids:
        network.node(node_id).mempool.base_fee = base_fee
    prefill_mempools(network, median_price=gwei(1.0), sigma=0.3)
    supernode = Supernode.join(network)
    supernode.mempool.base_fee = base_fee
    return network, supernode


class TestToposhotUnder1559:
    def test_true_link_detected_when_y_above_base_fee(self):
        network, supernode = fee_market_network()
        report = measure_one_link(network, supernode, "n0", "n1")
        assert report.connected

    def test_non_link_not_detected(self):
        network, supernode = fee_market_network()
        report = measure_one_link(network, supernode, "n0", "n2")
        assert not report.connected

    def test_measurement_fails_closed_when_y_below_base_fee(self):
        """A mis-estimated Y below the base fee gets every measurement
        transaction dropped at admission — a setup failure, not a false
        answer."""
        network, supernode = fee_market_network(base_fee=gwei(2.0))
        config = MeasurementConfig(gas_price_y=gwei(1.0))
        report = measure_one_link(network, supernode, "n0", "n1", config)
        assert not report.connected
        assert not report.setup_a_ok
