"""V1/V2 non-interference re-verified under live surge pricing.

The fee market changes what can go wrong during a measurement: a surging
admission floor can silently reject txB and turn a probe into a false
negative. These worlds re-run the Theorem C.2 machinery with a market
installed — V1/V2 must still verify, the surge-band companion check must
attest that every probe price stayed admissible, and the measurement
itself must still find the link.
"""

import pytest

from repro.core.adaptive import choose_adaptive_y
from repro.core.config import MeasurementConfig
from repro.core.gas_estimator import estimate_y
from repro.core.noninterference import (
    NonInterferenceMonitor,
    check_conditions,
    check_surge_band,
    compare_worlds,
)
from repro.core.primitive import measure_one_link
from repro.errors import MeasurementError
from repro.eth.chain import Chain
from repro.eth.fee_market import FeeMarket, FeeMarketConfig, min_measurement_y
from repro.eth.miner import Miner
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import INTRINSIC_GAS, gwei
from repro.netgen.workloads import prefill_mempools


def build_world(measure: bool, seed: int = 77):
    """Five fully connected nodes, full pools, a live fee market, and a
    miner producing small full blocks — the measured world optionally runs
    one link measurement priced by the floor-aware estimator."""
    network = Network(seed=seed)
    network.chain = Chain(gas_limit=8 * INTRINSIC_GAS)
    config = NodeConfig(policy=GETH.scaled(256))
    ids = [f"n{i}" for i in range(5)]
    for node_id in ids:
        network.create_node(node_id, config)
    for i, a in enumerate(ids):
        for b in ids[i + 1 :]:
            network.connect(a, b)
    network.install_fee_market(
        FeeMarket(FeeMarketConfig(update_interval=0.5))
    )
    prefill_mempools(network, median_price=gwei(10.0), sigma=0.2)
    supernode = Supernode.join(network)
    miner = Miner(
        network.node("n0"),
        network.chain,
        block_interval=6.0,
        min_gas_price=gwei(2.0),
        poisson=False,
    )
    miner.start(initial_delay=6.0)

    market = network.fee_market
    senders = set()
    y0 = gwei(10.0)
    window = (0.0, 0.0)
    if measure:
        config_m = MeasurementConfig.for_policy(GETH.scaled(256))
        y0 = estimate_y(supernode, config_m)
        config_m = config_m.with_gas_price(y0)
        monitor = NonInterferenceMonitor(
            network.chain,
            y0=y0,
            market=market,
            replace_bump=config_m.replace_bump,
        )
        monitor.start(network.sim.now)
        report = measure_one_link(network, supernode, "n1", "n2", config_m)
        monitor.stop(network.sim.now)
        window = (monitor._t1, monitor._t2)
        senders.update(report.measurement_senders)
        assert report.connected
        build_world.monitor = monitor  # stashed for the verify tests
    network.run(60.0 - network.sim.now)
    return network, senders, y0, window


class TestSurgeWorld:
    def test_pools_surge_and_measurement_still_detects(self):
        network, _, y0, _ = build_world(measure=True)
        market = network.fee_market
        # Full pools: surge pricing is engaged for the quote the whole run.
        assert market.occupancy > market.config.target_occupancy
        assert market.surge > 1.0
        # The floor-aware estimate keeps the cheapest probe admissible.
        floor = market.floor
        assert int(y0 * 0.95) >= floor

    def test_v1_v2_verified_under_surge(self):
        network, _, y0, window = build_world(measure=True)
        report = check_conditions(
            network.chain, t1=window[0], t2=window[1], y0=int(y0 * 0.9),
            expiry=30.0,
        )
        assert report.non_interfering, report.summary()

    def test_surge_band_clear_for_floor_aware_y(self):
        network, _, y0, window = build_world(measure=True)
        monitor = build_world.monitor
        band = monitor.verify_surge()
        assert band.samples_checked > 0
        assert band.admissible_throughout, band.summary()
        assert band.peak_floor <= band.tx_b_price

    def test_surge_band_flags_underpriced_y(self):
        network, _, _, window = build_world(measure=True)
        market = network.fee_market
        # A naive Y chosen below the floor's clearance must be flagged.
        naive_y = min_measurement_y(market.floor, 0.1) // 2
        band = check_surge_band(
            market, window[0], window[1], naive_y, replace_bump=0.1
        )
        assert not band.admissible_throughout
        assert band.violating_samples

    def test_blocks_identical_modulo_measurement_senders(self):
        measured, senders, _, _ = build_world(measure=True)
        hypothetical, _, _, _ = build_world(measure=False)
        comparison = compare_worlds(
            measured.chain.blocks,
            hypothetical.chain.blocks,
            ignore_senders=senders,
        )
        assert comparison.blocks_compared >= 5
        assert comparison.identical, comparison.summary()


class TestFloorAwareEstimators:
    def test_estimate_y_clamps_to_market_floor(self):
        network, _, _, _ = build_world(measure=False)
        supernode = next(
            network.node(nid) for nid in network.supernode_ids
        )
        config = MeasurementConfig.for_policy(GETH.scaled(256))
        y = estimate_y(supernode, config)
        floor = network.fee_market.floor_for(network.sim.now)
        assert int(y * (1.0 - config.replace_bump / 2.0)) >= floor

    def test_explicit_y_bypasses_clamp(self):
        network, _, _, _ = build_world(measure=False)
        supernode = next(
            network.node(nid) for nid in network.supernode_ids
        )
        config = MeasurementConfig.for_policy(
            GETH.scaled(256)
        ).with_gas_price(123)
        assert estimate_y(supernode, config) == 123

    def test_adaptive_y_raises_when_floor_closes_band(self):
        network, _, _, _ = build_world(measure=False)
        observer = network.node("n1")
        # A market floor pinned above the inclusion floor closes the band.
        network.fee_market.floor = network.chain.base_fee + gwei(50.0)
        network.fee_market._last_update = network.sim.now + 10**6
        with pytest.raises(MeasurementError):
            choose_adaptive_y(network.chain, observer)
