"""Property-style sweeps over random topologies.

The 100%-precision guarantee must hold on *any* connected overlay, not
just the seeds the other tests use; these sweeps hammer the primitive and
the campaign across randomly shaped networks and propagation variants.
"""

import itertools

import pytest

from repro.core.campaign import TopoShot
from repro.core.primitive import measure_one_link
from repro.eth.supernode import Supernode
from repro.netgen.ethereum import NetworkSpec, generate_network
from repro.netgen.workloads import prefill_mempools


def build(seed, **overrides):
    defaults = dict(n_nodes=10, mempool_capacity=128, outbound_dials=3, max_peers=8)
    defaults.update(overrides)
    network = generate_network(NetworkSpec(seed=seed, **defaults))
    prefill_mempools(network)
    return network


class TestPrimitivePrecisionSweep:
    @pytest.mark.parametrize("seed", range(200, 210))
    def test_no_false_positive_on_any_random_topology(self, seed):
        """For each random network, probe one true link and one non-link;
        the non-link must never be reported (precision by construction)."""
        network = build(seed)
        truth = network.ground_truth_graph()
        supernode = Supernode.join(network)
        pairs = list(itertools.combinations(sorted(truth.nodes()), 2))
        true_pair = next(p for p in pairs if truth.has_edge(*p))
        non_pair = next((p for p in pairs if not truth.has_edge(*p)), None)
        assert measure_one_link(network, supernode, *true_pair).connected
        if non_pair is not None:
            supernode.clear_observations()
            network.forget_known_transactions()
            assert not measure_one_link(network, supernode, *non_pair).connected


class TestPropagationVariants:
    def test_campaign_works_under_announce_only_propagation(self):
        """TopoShot does not depend on direct pushes: with Bitcoin-style
        announce-only gossip the hashes still flow and detection holds."""
        network = build(301, announce_only=True, n_nodes=12)
        shot = TopoShot.attach(network)
        shot.config = shot.config.with_repeats(2)
        measurement = shot.measure_network()
        assert measurement.score.precision == 1.0
        assert measurement.score.recall >= 0.85

    def test_campaign_works_under_push_to_all(self):
        # Push-to-all floods faster, which widens the parallel race window;
        # the paper's three-repeat union absorbs it.
        network = build(302, push_to_all=True, n_nodes=12)
        shot = TopoShot.attach(network)
        shot.config = shot.config.with_repeats(3)
        measurement = shot.measure_network()
        assert measurement.score.precision == 1.0
        assert measurement.score.recall >= 0.9

    def test_campaign_works_without_announcements(self):
        network = build(303, announce_only=False, n_nodes=12)
        for node_id in network.measurable_node_ids():
            node = network.node(node_id)
            object.__setattr__(node.config, "announce_enabled", False)
        shot = TopoShot.attach(network)
        measurement = shot.measure_network()
        assert measurement.score.precision == 1.0
        assert measurement.score.recall >= 0.9
