"""Measurement campaigns under injected faults: determinism, graceful
degradation, retry-driven recall recovery, and checkpoint/resume."""

import json

import pytest

from repro.core.campaign import CampaignCheckpoint, TopoShot
from repro.errors import CheckpointError
from repro.io import measurement_to_dict
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from repro.sim.faults import FaultPlan


def campaign_network(seed, n_nodes=14):
    network = quick_network(n_nodes=n_nodes, seed=seed)
    prefill_mempools(network)
    return network


def run_campaign(seed, plan=None, n_nodes=14, repeats=1, retries=0, **kwargs):
    network = campaign_network(seed, n_nodes=n_nodes)
    if plan is not None:
        network.install_faults(plan)
    shot = TopoShot.attach(network)
    shot.config = shot.config.with_repeats(repeats)
    if retries:
        shot.config = shot.config.with_retries(retries)
    return shot.measure_network(**kwargs), network


def canonical(measurement) -> str:
    return json.dumps(measurement_to_dict(measurement), sort_keys=True)


class TestFaultDeterminism:
    def test_same_seed_same_plan_byte_identical(self):
        plan = FaultPlan(loss_rate=0.05, churn_rate=0.01, crash_rate=0.002)
        first, _ = run_campaign(77, plan, repeats=2, retries=1)
        second, _ = run_campaign(77, plan, repeats=2, retries=1)
        assert canonical(first) == canonical(second)

    def test_disabled_plan_is_a_true_noop(self):
        """Installing FaultPlan() must reproduce the seed behaviour down to
        the last byte and the last simulator event."""
        baseline, net_a = run_campaign(78, plan=None)
        with_noop, net_b = run_campaign(78, plan=FaultPlan())
        assert canonical(baseline) == canonical(with_noop)
        assert net_a.messages_sent == net_b.messages_sent
        assert net_a.sim.executed_events == net_b.sim.executed_events

    def test_precision_stays_high_under_faults(self):
        """Loss CAN manufacture false positives (a bystander that missed
        txC admits and relays txA — the paper's precision proof assumes
        txC reached everyone), but the damage must stay marginal."""
        plan = FaultPlan(loss_rate=0.1, churn_rate=0.02, crash_rate=0.005)
        measurement, _ = run_campaign(79, plan)
        assert measurement.score.precision >= 0.95


class TestGracefulDegradation:
    def test_campaign_survives_heavy_crashes(self):
        plan = FaultPlan(crash_rate=0.05, crash_downtime=20.0)
        measurement, network = run_campaign(80, plan)
        # The campaign finished despite crashed targets: every scheduled
        # iteration ran (none aborted the walk) and precision held up.
        assert network.faults.crashes > 0
        assert measurement.iterations > 0
        assert measurement.score.precision >= 0.95

    def test_recall_recovers_with_retries_under_loss(self):
        """Acceptance bar: 5% loss, repeats + retries, 24 nodes, recall
        >= 0.9 (the paper's union-of-three-repeats, Section 6.1)."""
        plan = FaultPlan(loss_rate=0.05)
        measurement, _ = run_campaign(
            81, plan, n_nodes=24, repeats=3, retries=2
        )
        assert measurement.score.recall >= 0.9
        assert measurement.score.precision >= 0.95


class TestCheckpointResume:
    def test_checkpoint_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        checkpoint = CampaignCheckpoint(
            seed=9,
            targets=["n0", "n1", "n2"],
            group_size=2,
            completed_iterations=1,
            edges={frozenset(("n0", "n1"))},
            transactions_sent=42,
            setup_failures=1,
            send_timeouts=0,
            skipped_nodes=["n3"],
            failures=[],
        )
        checkpoint.save(path)
        loaded = CampaignCheckpoint.load(path)
        assert loaded == checkpoint

    def test_corrupt_checkpoint_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.load(path)

    def test_seed_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "ckpt.json"
        run_campaign(82, checkpoint_path=path)
        network = campaign_network(83)
        shot = TopoShot.attach(network)
        with pytest.raises(CheckpointError):
            shot.measure_network(checkpoint_path=path, resume=True)

    def test_resume_without_checkpoint_path_raises(self):
        network = campaign_network(82)
        shot = TopoShot.attach(network)
        with pytest.raises(CheckpointError):
            shot.measure_network(resume=True)

    def test_killed_then_resumed_matches_uninterrupted(self, tmp_path):
        """Acceptance bar: a campaign killed mid-run and resumed from its
        checkpoint ends with the same edge set as an uninterrupted run."""
        uninterrupted, _ = run_campaign(84, repeats=2)
        assert uninterrupted.score.recall == 1.0  # fault-free baseline

        path = tmp_path / "ckpt.json"

        class Killed(RuntimeError):
            pass

        def kill_after_first(index, total, iteration, report):
            assert total > 1, "schedule too small to interrupt meaningfully"
            if index >= 1:
                raise Killed

        network = campaign_network(84)
        shot = TopoShot.attach(network)
        shot.config = shot.config.with_repeats(2)
        with pytest.raises(Killed):
            shot.measure_network(
                checkpoint_path=path, progress=kill_after_first
            )
        partial = CampaignCheckpoint.load(path)
        assert 0 < partial.completed_iterations < uninterrupted.iterations

        # A fresh process: same seed, resume from the checkpoint.
        resumed, _ = run_campaign(
            84, repeats=2, checkpoint_path=path, resume=True
        )
        assert resumed.edges == uninterrupted.edges
        assert resumed.iterations == uninterrupted.iterations

        final = CampaignCheckpoint.load(path)
        assert final.completed_iterations == uninterrupted.iterations

    def test_resume_of_finished_campaign_is_instant(self, tmp_path):
        path = tmp_path / "ckpt.json"
        first, _ = run_campaign(85, checkpoint_path=path)
        resumed, _ = run_campaign(85, checkpoint_path=path, resume=True)
        assert resumed.edges == first.edges
        assert resumed.duration == 0.0  # nothing left to simulate
