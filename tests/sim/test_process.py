"""Tests for periodic processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class TestPeriodicProcess:
    def test_regular_ticks(self):
        sim = Simulator(seed=0)
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start(initial_delay=1.0)
        sim.run(until=5.5)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_halts_ticking(self):
        sim = Simulator(seed=0)
        ticks = []
        process = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        process.start(initial_delay=1.0)
        sim.run(until=2.5)
        process.stop()
        sim.run(until=10.0)
        assert len(ticks) == 2
        assert not process.running

    def test_start_is_idempotent(self):
        sim = Simulator(seed=0)
        ticks = []
        process = PeriodicProcess(sim, 1.0, lambda: ticks.append(1))
        process.start(initial_delay=1.0)
        process.start(initial_delay=1.0)
        sim.run(until=1.5)
        assert len(ticks) == 1

    def test_poisson_gaps_vary_but_average_out(self):
        sim = Simulator(seed=3)
        times = []
        process = PeriodicProcess(
            sim, 2.0, lambda: times.append(sim.now), poisson=True
        )
        process.start()
        sim.run(until=2000.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert len(set(round(g, 6) for g in gaps)) > 10  # jittered
        mean_gap = sum(gaps) / len(gaps)
        assert 1.6 <= mean_gap <= 2.4

    def test_tick_counter(self):
        sim = Simulator(seed=0)
        process = PeriodicProcess(sim, 1.0, lambda: None)
        process.start(initial_delay=0.5)
        sim.run(until=3.6)
        assert process.ticks == 4

    def test_rejects_non_positive_interval(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)

    def test_stop_from_within_action(self):
        sim = Simulator(seed=0)
        ticks = []

        def action():
            ticks.append(sim.now)
            if len(ticks) == 2:
                process.stop()

        process = PeriodicProcess(sim, 1.0, action)
        process.start(initial_delay=1.0)
        sim.run(until=10.0)
        assert len(ticks) == 2
