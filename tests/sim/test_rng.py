"""Tests for named seeded RNG streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(123, "stream") < 2**64

    @given(st.integers(), st.text(max_size=50))
    def test_deterministic_property(self, master, name):
        assert derive_seed(master, name) == derive_seed(master, name)


class TestRegistry:
    def test_stream_is_cached(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_independent(self):
        registry = RngRegistry(7)
        a = registry.stream("a")
        before = registry.stream("b").random()
        # Drawing from a must not perturb b's reproducibility.
        a.random()
        fresh = RngRegistry(7)
        fresh.stream("a")
        assert fresh.stream("b").random() == before

    def test_adding_consumer_does_not_shift_existing(self):
        r1 = RngRegistry(3)
        seq1 = [r1.stream("target").random() for _ in range(3)]
        r2 = RngRegistry(3)
        r2.stream("brand-new-consumer")
        seq2 = [r2.stream("target").random() for _ in range(3)]
        assert seq1 == seq2

    def test_fork_changes_universe(self):
        base = RngRegistry(3)
        forked = base.fork("child")
        assert base.stream("x").random() != forked.stream("x").random()

    def test_contains_and_len(self):
        registry = RngRegistry(0)
        assert "x" not in registry
        registry.stream("x")
        assert "x" in registry
        assert len(registry) == 1
