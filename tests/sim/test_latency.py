"""Tests for link-latency models."""

import random

import pytest

from repro.sim.latency import ConstantLatency, LogNormalLatency, UniformLatency


@pytest.fixture
def rng():
    return random.Random(1)


class TestConstantLatency:
    def test_returns_fixed_delay(self, rng):
        model = ConstantLatency(0.05)
        assert model(rng, "a", "b") == 0.05

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ConstantLatency(0.0)


class TestUniformLatency:
    def test_within_bounds(self, rng):
        model = UniformLatency(0.02, 0.12)
        for _ in range(200):
            delay = model(rng, "a", "b")
            assert 0.02 <= delay <= 0.12

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_rejects_zero_low(self):
        with pytest.raises(ValueError):
            UniformLatency(0.0, 0.1)


class TestLogNormalLatency:
    def test_positive_and_capped(self, rng):
        model = LogNormalLatency(median=0.08, sigma=0.5, cap=1.0)
        draws = [model(rng, "a", "b") for _ in range(500)]
        assert all(0 < d <= 1.0 for d in draws)

    def test_median_roughly_respected(self, rng):
        model = LogNormalLatency(median=0.08, sigma=0.5, cap=10.0)
        draws = sorted(model(rng, "a", "b") for _ in range(2001))
        assert 0.06 <= draws[1000] <= 0.10

    def test_zero_sigma_is_constant(self, rng):
        model = LogNormalLatency(median=0.08, sigma=0.0)
        assert abs(model(rng, "a", "b") - 0.08) < 1e-12

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.1, sigma=-1.0)
