"""Tests for region-aware latency and its netgen integration."""

import random

import pytest

from repro.core.campaign import TopoShot
from repro.netgen.ethereum import NetworkSpec, generate_network
from repro.netgen.workloads import prefill_mempools
from repro.sim.latency import GeoLatency


@pytest.fixture
def model():
    return GeoLatency(
        regions={"a": "us", "b": "us", "c": "eu", "d": "ap"},
        jitter_sigma=0.0,  # deterministic for exact assertions
    )


class TestGeoLatency:
    def test_intra_region_faster_than_inter(self, model):
        rng = random.Random(1)
        assert model(rng, "a", "b") < model(rng, "a", "c")
        assert model(rng, "a", "c") < model(rng, "a", "d")

    def test_symmetric(self, model):
        rng = random.Random(1)
        assert model(rng, "a", "c") == model(rng, "c", "a")

    def test_unknown_node_uses_default_region(self, model):
        rng = random.Random(1)
        assert model(rng, "mystery", "a") == model(rng, "b", "a")

    def test_jitter_bounded_by_cap(self):
        model = GeoLatency(
            regions={"x": "us", "y": "ap"}, jitter_sigma=2.0, cap=0.5
        )
        rng = random.Random(2)
        assert all(model(rng, "x", "y") <= 0.5 for _ in range(200))

    def test_missing_region_pair_raises(self):
        model = GeoLatency(
            regions={"x": "mars"},
            base_delays={("us", "us"): 0.03},
            default_region="us",
        )
        rng = random.Random(3)
        with pytest.raises(ValueError):
            model(rng, "x", "x")

    def test_invalid_base_delay_rejected(self):
        with pytest.raises(ValueError):
            GeoLatency(regions={}, base_delays={("us", "us"): 0.0})


class TestNetgenRegions:
    def test_region_mix_activates_geo_latency(self):
        network = generate_network(
            NetworkSpec(
                n_nodes=15, seed=3, region_mix={"us": 0.5, "eu": 0.3, "ap": 0.2}
            )
        )
        assert isinstance(network.latency, GeoLatency)
        assert set(network.node_regions) == set(
            network.measurable_node_ids()
        )

    def test_explicit_latency_wins_over_region_mix(self):
        from repro.sim.latency import ConstantLatency

        network = generate_network(
            NetworkSpec(
                n_nodes=8,
                seed=4,
                latency=ConstantLatency(0.05),
                region_mix={"us": 1.0},
            )
        )
        assert isinstance(network.latency, ConstantLatency)

    def test_measurement_still_exact_under_geo_latency(self):
        network = generate_network(
            NetworkSpec(
                n_nodes=12, seed=5, region_mix={"us": 0.5, "eu": 0.5}
            )
        )
        prefill_mempools(network)
        shot = TopoShot.attach(network)
        shot.config = shot.config.with_repeats(2)
        measurement = shot.measure_network()
        assert measurement.score.precision == 1.0
        assert measurement.score.recall >= 0.9
