"""Tests for the structured tracer."""

from repro.sim.tracing import Tracer


class TestTracer:
    def test_records_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "event", "first")
        tracer.record(2.0, "event", "second")
        assert [r.detail for r in tracer] == ["first", "second"]

    def test_filter_by_kind(self):
        tracer = Tracer()
        tracer.record(1.0, "tx", "a")
        tracer.record(1.0, "block", "b")
        assert len(tracer.filter(kind="tx")) == 1

    def test_filter_by_substring(self):
        tracer = Tracer()
        tracer.record(1.0, "tx", "node-7 pushed 0xabc")
        tracer.record(1.0, "tx", "node-8 pushed 0xdef")
        assert len(tracer.filter(contains="node-7")) == 1

    def test_capacity_drops_and_counts(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), "x", str(i))
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_clear_resets(self):
        tracer = Tracer(capacity=1)
        tracer.record(0.0, "x", "a")
        tracer.record(0.0, "x", "b")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_str_rendering(self):
        tracer = Tracer()
        tracer.record(1.2345, "kind", "detail")
        assert "kind" in str(tracer.records[0])
        assert "detail" in str(tracer.records[0])

    def test_unbounded_by_default(self):
        tracer = Tracer()
        for i in range(10_000):
            tracer.record(float(i), "x", str(i))
        assert len(tracer) == 10_000
        assert tracer.dropped == 0

    def test_capacity_keeps_the_head_of_the_story(self):
        # The tracer drops the *newest* records once full — the opposite of
        # repro.obs.EventLog's overwrite-oldest ring (see module docstring).
        tracer = Tracer(capacity=3)
        for i in range(6):
            tracer.record(float(i), "x", str(i))
        assert [r.detail for r in tracer] == ["0", "1", "2"]
        assert tracer.dropped == 3

    def test_records_survive_after_drops_begin(self):
        tracer = Tracer(capacity=1)
        tracer.record(0.0, "x", "kept")
        tracer.record(1.0, "x", "dropped")
        assert tracer.filter(contains="kept")
        assert not tracer.filter(contains="dropped")
