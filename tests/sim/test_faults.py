"""The fault-injection layer: plans, determinism, churn, crash/restart."""

import pytest

from repro.errors import FaultPlanError, SendTimeoutError
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.supernode import Supernode
from repro.eth.transaction import TransactionFactory, gwei
from repro.eth.account import Wallet
from repro.sim.faults import FaultInjector, FaultPlan, LinkFaults


def pair_network(seed=11):
    network = Network(seed=seed)
    config = NodeConfig(policy=GETH.scaled(64))
    network.create_node("a", config)
    network.create_node("b", config)
    network.connect("a", "b")
    network.run(1.0)  # let the handshake settle
    return network


def submit_transfer(network, node_id, wallet, factory):
    account = wallet.fresh_account()
    tx = factory.transfer(account, gas_price=gwei(2.0))
    network.node(node_id).submit_transaction(tx)
    return tx


class TestFaultPlanValidation:
    def test_default_plan_is_disabled(self):
        assert not FaultPlan().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_rate": -0.1},
            {"loss_rate": 1.5},
            {"send_timeout_rate": 2.0},
            {"extra_delay_mean": -1.0},
            {"churn_rate": -0.5},
            {"crash_rate": -0.5},
            {"churn_downtime": 0.0},
            {"crash_downtime": -3.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(FaultPlanError):
            FaultPlan(**kwargs)

    def test_rejects_bad_link_override(self):
        with pytest.raises(FaultPlanError):
            LinkFaults(loss_rate=1.2)

    def test_link_override_beats_plan_wide_rates(self):
        plan = FaultPlan(
            loss_rate=0.1,
            extra_delay_mean=0.5,
            link_overrides={frozenset(("a", "b")): LinkFaults(loss_rate=0.9)},
        )
        assert plan.link_faults("b", "a") == (0.9, 0.0)
        assert plan.link_faults("a", "c") == (0.1, 0.5)
        assert plan.enabled


class TestMessageLoss:
    def test_total_loss_blocks_propagation(self, wallet, factory):
        network = pair_network()
        network.install_faults(FaultPlan(loss_rate=1.0))
        tx = submit_transfer(network, "a", wallet, factory)
        network.run(5.0)
        assert tx.hash not in network.node("b").mempool
        assert network.faults.messages_dropped > 0
        assert network.drops_by_reason.get("loss", 0) > 0

    def test_zero_loss_changes_nothing(self, wallet, factory):
        network = pair_network()
        network.install_faults(FaultPlan())
        tx = submit_transfer(network, "a", wallet, factory)
        network.run(5.0)
        assert tx.hash in network.node("b").mempool
        assert network.messages_dropped == 0

    def test_loss_is_deterministic_in_the_seed(self):
        def run(seed):
            wallet = Wallet("loss-det")
            factory = TransactionFactory()
            network = pair_network(seed=seed)
            network.install_faults(FaultPlan(loss_rate=0.5))
            # Spaced submissions so each push is its own message (the
            # broadcast loop batches same-instant submissions into one).
            for _ in range(20):
                submit_transfer(network, "a", wallet, factory)
                network.run(1.0)
            network.run(10.0)
            return (
                [
                    (event.time, event.kind, event.detail)
                    for event in network.faults.events
                ],
                sorted(
                    tx.hash
                    for tx in network.node("b").mempool.all_transactions()
                ),
            )

        first = run(31)
        second = run(31)
        assert first == second
        assert first[0], "a 50% loss rate over 20 messages must drop some"
        third = run(32)
        assert third != first

    def test_extra_delay_slows_but_delivers(self, wallet, factory):
        slow = pair_network()
        slow.install_faults(FaultPlan(extra_delay_mean=2.0))
        tx = submit_transfer(slow, "a", wallet, factory)
        slow.run(0.2)
        assert tx.hash not in slow.node("b").mempool  # still in flight
        slow.run(60.0)
        assert tx.hash in slow.node("b").mempool  # ... but never lost


class TestChurn:
    def test_churn_takes_links_down_and_back_up(self):
        network = pair_network(seed=21)
        network.install_faults(
            FaultPlan(churn_rate=0.5, churn_downtime=2.0)
        )
        network.run(30.0)
        injector = network.faults
        assert injector.churn_events > 0
        kinds = [event.kind for event in injector.events]
        assert "churn_down" in kinds
        assert "churn_up" in kinds
        # Disarm and let the last pending downtime elapse: the heal still
        # runs after stop(), so the link comes back.
        network.clear_faults()
        network.run(5.0)
        assert network.are_connected("a", "b")

    def test_supernode_links_are_spared_by_default(self):
        network = pair_network(seed=22)
        supernode = Supernode.join(network)
        network.install_faults(FaultPlan(churn_rate=1.0, churn_downtime=1.0))
        network.run(30.0)
        for event in network.faults.events:
            if event.kind == "churn_down":
                assert supernode.id not in event.detail

    def test_fault_daemons_do_not_block_settle(self):
        network = pair_network(seed=23)
        network.install_faults(FaultPlan(churn_rate=1.0, crash_rate=1.0))
        before = network.sim.now
        network.settle()  # must terminate despite self-rescheduling faults
        assert network.sim.now >= before

    def test_stop_disarms_the_injector(self):
        network = pair_network(seed=24)
        injector = network.install_faults(FaultPlan(churn_rate=5.0))
        network.run(5.0)
        events_before = len(injector.events)
        network.clear_faults()
        network.run(20.0)
        down_events = sum(
            1 for e in injector.events[events_before:] if e.kind == "churn_down"
        )
        assert down_events == 0  # no new faults after stop()
        assert network.are_connected("a", "b")  # ... but heals still ran


class TestCrashRestart:
    def test_crash_wipes_mempool_and_known_txs_on_restart(self, wallet, factory):
        network = pair_network(seed=25)
        tx = submit_transfer(network, "a", wallet, factory)
        network.run(5.0)
        node_b = network.node("b")
        assert tx.hash in node_b.mempool
        assert any(state.known_txs for state in node_b.peers.values())

        node_b.crash()
        assert node_b.crashed
        node_b.restart()
        assert not node_b.crashed
        assert node_b.crash_count == 1
        assert len(node_b.mempool) == 0
        assert tx.hash not in node_b.mempool
        assert all(not state.known_txs for state in node_b.peers.values())

    def test_restart_keeps_the_chain_view(self):
        network = pair_network(seed=26)
        node = network.node("a")
        node.head_number = 7
        node.confirmed_nonces["0xabc"] = 3
        node.crash()
        node.restart()
        assert node.head_number == 7
        assert node.confirmed_nonces["0xabc"] == 3

    def test_crashed_node_neither_sends_nor_receives(self, wallet, factory):
        network = pair_network(seed=27)
        network.node("b").crash()
        tx = submit_transfer(network, "a", wallet, factory)
        network.run(5.0)
        assert tx.hash not in network.node("b").mempool
        assert network.drops_by_reason.get("target_crashed", 0) > 0

    def test_crash_process_fires_and_recovers(self):
        network = pair_network(seed=28)
        network.install_faults(FaultPlan(crash_rate=0.5, crash_downtime=2.0))
        network.run(40.0)
        injector = network.faults
        assert injector.crashes > 0
        kinds = [event.kind for event in injector.events]
        assert "crash" in kinds and "restart" in kinds
        # Disarm and let the last downtime elapse: everyone comes back.
        network.clear_faults()
        network.run(5.0)
        assert not network.node("a").crashed
        assert not network.node("b").crashed


class TestSendTimeouts:
    def test_supernode_injection_times_out(self):
        network = pair_network(seed=29)
        supernode = Supernode.join(network)
        network.install_faults(FaultPlan(send_timeout_rate=1.0))
        factory = TransactionFactory()
        wallet = Wallet("timeout")
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1.0))
        with pytest.raises(SendTimeoutError):
            supernode.send_transactions("a", [tx])
        assert network.faults.send_timeouts == 1

    def test_injector_survives_reinstall(self):
        network = pair_network(seed=30)
        first = network.install_faults(FaultPlan(churn_rate=1.0))
        second = network.install_faults(FaultPlan(loss_rate=0.1))
        assert network.faults is second
        assert isinstance(first, FaultInjector)
        network.run(10.0)  # first's pending daemons must be inert
        assert first.churn_events == 0
