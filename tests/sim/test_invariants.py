"""Tests for the runtime invariant checker (repro.sim.invariants)."""

import pytest

from repro.core.campaign import TopoShot
from repro.errors import InvariantViolationError, SimulationError, SnapshotError
from repro.eth.behaviors import BehaviorMix, BehaviorSet
from repro.eth.messages import Transactions
from repro.eth.network import Network
from repro.eth.node import NodeConfig
from repro.eth.policies import GETH
from repro.eth.transaction import Transaction, gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from repro.sim.invariants import InvariantChecker


def make_line(n=3, seed=11):
    network = Network(seed=seed)
    config = NodeConfig(policy=GETH.scaled(64))
    for i in range(n):
        network.create_node(f"n{i}", config)
    for i in range(n - 1):
        network.connect(f"n{i}", f"n{i + 1}")
    return network


def install_behavior(network, node_id, kind, **mix_knobs):
    """Targeted install with the network-level registry wired up, so the
    checker classifies the node as Byzantine (what install_behaviors does,
    minus the random draw)."""
    behavior_set = BehaviorSet(network, BehaviorMix(**mix_knobs))
    behavior_set.install_on(network.node(node_id), kind)
    network.behaviors = behavior_set
    return behavior_set


class TestLifecycle:
    def test_install_and_clear_restore_delivery_callback(self):
        network = make_line(2)
        assert network._deliver_cb == network._deliver
        checker = network.install_invariants()
        assert network.invariants is checker
        assert network._deliver_cb != network._deliver
        network.clear_invariants()
        assert network.invariants is None
        assert network._deliver_cb == network._deliver
        assert all(not node.tx_observers for node in network.nodes.values())

    def test_double_attach_refused(self):
        network = make_line(2)
        checker = network.install_invariants()
        with pytest.raises(SimulationError):
            checker.attach(make_line(2, seed=12))

    def test_snapshot_refused_while_installed(self):
        network = make_line(2)
        network.settle()
        state = network.snapshot()
        network.install_invariants()
        with pytest.raises(SnapshotError):
            network.snapshot()
        with pytest.raises(SnapshotError):
            network.restore(state)
        network.clear_invariants()
        network.restore(state)  # fine once cleared

    def test_bad_full_check_every_refused(self):
        with pytest.raises(SimulationError):
            InvariantChecker(full_check_every=-1)


class TestHonestRunsAreClean:
    def test_propagation_run_reports_zero_violations(self, wallet, factory):
        network = make_line(4)
        checker = network.install_invariants(strict=True)
        for _ in range(5):
            tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
            network.node("n0").submit_transaction(tx)
            network.run(5.0)
        assert checker.total_violations == 0
        assert checker.summary() == "invariants: no violations"

    def test_full_measurement_reports_zero_violations(self):
        # The acceptance bar: an all-honest, fault-free TopoShot campaign
        # never trips a single invariant, in strict mode.
        network = quick_network(n_nodes=10, seed=3)
        prefill_mempools(network)
        checker = network.install_invariants(strict=True)
        shot = TopoShot.attach(network)
        measurement = shot.measure_network()
        assert measurement.edges  # the run actually measured something
        assert checker.total_violations == 0

    def test_forget_known_transactions_resets_link_state(self, wallet, factory):
        # The campaign wipes per-peer known-tx caches between iterations;
        # an honest re-push after the wipe must not read as duplicate_push.
        network = make_line(2)
        checker = network.install_invariants()
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        node = network.node("n0")
        node.submit_transaction(tx)
        network.run(5.0)
        network.forget_known_transactions()
        node.broadcast_transaction(tx)
        network.run(5.0)
        assert checker.counts.get("duplicate_push", 0) == 0


class TestViolationDetection:
    def test_spoof_relay_flags_relay_unpooled_as_byzantine(
        self, wallet, factory
    ):
        network = make_line(3)
        behavior_set = install_behavior(network, "n1", "spoof_relay")
        # The injector pushes a body it never pooled; mark it Byzantine
        # too so only the adversary model is on trial here.
        behavior_set.install_on(network.node("n0"), "spoof_relay")
        checker = network.install_invariants()
        account = wallet.fresh_account()
        original = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        network.node("n0").submit_transaction(original)
        network.run(10.0)
        weak = Transaction(
            sender=account.address, nonce=0, gas_price=int(gwei(1.02))
        )
        network.send("n0", "n1", Transactions(txs=(weak,)))
        network.run(10.0)
        assert checker.counts["relay_unpooled"] >= 1
        assert checker.honest_counts.get("relay_unpooled", 0) == 0
        assert any(
            v.byzantine and v.node == "n1" and v.invariant == "relay_unpooled"
            for v in checker.violations
        )

    def test_nonconforming_replacer_flags_replacement_bump(
        self, wallet, factory
    ):
        network = make_line(2)
        install_behavior(network, "n1", "nonconforming_replacer")
        checker = network.install_invariants()
        account = wallet.fresh_account()
        original = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        network.node("n0").submit_transaction(original)
        network.run(10.0)
        weak = Transaction(
            sender=account.address, nonce=0, gas_price=int(gwei(1.02))
        )
        network.send("n0", "n1", Transactions(txs=(weak,)))
        network.run(10.0)
        # The R=0 node replaced below its *conforming* policy's bump.
        assert checker.counts["replacement_bump"] >= 1
        assert checker.honest_counts.get("replacement_bump", 0) == 0

    def test_duplicate_spammer_flags_duplicate_push(self, wallet, factory):
        network = make_line(3)
        install_behavior(network, "n1", "duplicate_spammer", spam_rate=1.0)
        checker = network.install_invariants()
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        network.node("n0").submit_transaction(tx)
        network.run(10.0)
        assert checker.counts.get("duplicate_push", 0) >= 1
        assert checker.honest_counts.get("duplicate_push", 0) == 0

    def test_isolation_guard_fires_off_target(self, wallet, factory):
        network = make_line(3)
        checker = network.install_invariants()
        account = wallet.fresh_account()
        tx_c = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        network.node("n0").submit_transaction(tx_c)
        network.run(10.0)
        checker.guard_isolation(tx_c.hash, frozenset({"n1"}))
        replacement = Transaction(
            sender=account.address, nonce=0, gas_price=gwei(1.2)
        )
        network.node("n0").submit_transaction(replacement)
        network.run(10.0)
        offenders = {
            v.node for v in checker.violations if v.invariant == "isolation"
        }
        assert "n0" in offenders or "n2" in offenders
        assert "n1" not in offenders
        checker.clear_guards()


class TestStrictMode:
    def test_honest_violation_raises(self, wallet, factory):
        network = make_line(2)
        network.install_invariants(strict=True)
        tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(1))
        # n0 never pooled this body, yet pushes it: a simulator bug by
        # construction, which strict mode turns into a hard failure.
        network.send("n0", "n1", Transactions(txs=(tx,)))
        with pytest.raises(InvariantViolationError):
            network.run(5.0)

    def test_byzantine_violation_is_record_only(self, wallet, factory):
        network = make_line(3)
        behavior_set = install_behavior(network, "n1", "spoof_relay")
        behavior_set.install_on(network.node("n0"), "spoof_relay")
        checker = network.install_invariants(strict=True)
        account = wallet.fresh_account()
        original = Transaction(sender=account.address, nonce=0, gas_price=gwei(1))
        network.node("n0").submit_transaction(original)
        network.run(10.0)
        weak = Transaction(
            sender=account.address, nonce=0, gas_price=int(gwei(1.02))
        )
        network.send("n0", "n1", Transactions(txs=(weak,)))
        network.run(10.0)  # no raise: the adversary model is working
        assert checker.counts["relay_unpooled"] >= 1
        assert checker.honest_violations == 0
