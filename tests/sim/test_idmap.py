"""Unit and property tests for the str<->int interning layer.

The struct-of-arrays core keeps strings at the API boundary and dense
integers inside; :class:`repro.sim.idmap.IdMap` is the contract between
the two. These tests pin the parts the transport relies on: append-only
assignment, bijection, and stability across a snapshot/restore cycle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eth.node import Node
from repro.eth.network import Network
from repro.sim.idmap import IdMap


def test_intern_assigns_dense_indices_in_order():
    idmap = IdMap()
    assert idmap.intern("a") == 0
    assert idmap.intern("b") == 1
    assert idmap.intern("a") == 0  # idempotent
    assert idmap.intern("c") == 2
    assert len(idmap) == 3
    assert list(idmap) == ["a", "b", "c"]


def test_lookup_api():
    idmap = IdMap()
    idmap.intern("x")
    assert idmap.index_of("x") == 0
    assert idmap.name_of(0) == "x"
    assert "x" in idmap
    assert "y" not in idmap
    assert idmap.get("y") == -1
    assert idmap.get("y", default=7) == 7
    with pytest.raises(KeyError):
        idmap.index_of("y")
    with pytest.raises(IndexError):
        idmap.name_of(1)
    with pytest.raises(IndexError):
        idmap.name_of(-1)


def test_check_bijection_detects_desync():
    idmap = IdMap()
    idmap.intern("a")
    idmap.intern("b")
    idmap.check_bijection()
    idmap.index["b"] = 5  # corrupt the inverse table
    with pytest.raises(AssertionError):
        idmap.check_bijection()


@given(st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_interning_is_a_stable_bijection(names):
    """Property: interning any sequence (with duplicates) yields a bijection
    between the distinct strings and ``range(n)``, in first-seen order, and
    a second map fed the captured table reproduces it exactly."""
    idmap = IdMap()
    for name in names:
        idmap.intern(name)

    distinct_first_seen = list(dict.fromkeys(names))
    assert list(idmap.capture()) == distinct_first_seen
    idmap.check_bijection()
    # Round-trip: every name goes str -> int -> str unchanged.
    for name in distinct_first_seen:
        assert idmap.name_of(idmap.index_of(name)) == name

    # Re-interning from a capture (what a restore conceptually replays)
    # rebuilds the identical table.
    replayed = IdMap()
    for name in idmap.capture():
        replayed.intern(name)
    assert replayed.capture() == idmap.capture()
    assert replayed.index == idmap.index


def test_network_idmap_survives_snapshot_restore():
    """The network-level contract: capture/restore leaves the str<->int
    table untouched, and node indices keep resolving to their ids."""
    network = Network(seed=5)
    for i in range(8):
        network.add_node(Node(f"n{i}", network.sim))
    for i in range(7):
        network.connect(f"n{i}", f"n{i + 1}")
    network.settle()
    before = network.ids.capture()

    snap = network.snapshot()
    network.disconnect("n0", "n1")
    network.connect("n0", "n7")
    network.settle()
    network.restore(snap)

    assert network.ids.capture() == before
    network.ids.check_bijection()
    for name in before:
        node = network.node(name)
        assert network.ids.name_of(node.index) == name
