"""RPC fault plans: validation, composition with wire faults, determinism.

The endpoint- and client-level behaviour (what each fault looks like to a
caller) lives in tests/eth/test_rpc_resilient.py; this module covers the
plan layer — bad knobs rejected up front, the ``"rpc"`` RNG stream staying
independent of the wire-fault streams, whole campaigns replaying
bit-identically under the full fault zoo, and checkpoint/resume surviving
a kill in the middle of an RPC outage.
"""

import json

import pytest

from repro.core.campaign import CampaignCheckpoint, TopoShot
from repro.errors import FaultPlanError
from repro.eth.account import Wallet
from repro.eth.behaviors import BehaviorMix
from repro.eth.transaction import TransactionFactory, gwei
from repro.io import measurement_to_dict
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from repro.sim.faults import FaultPlan, RpcFaultPlan

# Wire faults + adversarial peers + a degraded measurement plane: the
# worst realistic composition a live campaign fights all at once.
FULL_ZOO = dict(
    loss_rate=0.05,
    churn_rate=0.01,
    crash_rate=0.002,
    rpc=RpcFaultPlan.uniform(0.2, rate_limit_per_second=20.0, flap_rate=0.005),
)
BYZANTINE_MIX = BehaviorMix(spoof_relay=0.2, stale_client=0.1, censor=0.1)


def run_campaign(seed, n_nodes=14, plan=None, mix=None, **kwargs):
    network = quick_network(n_nodes=n_nodes, seed=seed)
    prefill_mempools(network)
    if plan is not None:
        network.install_faults(plan)
    if mix is not None:
        network.install_behaviors(mix)
    shot = TopoShot.attach(network)
    measurement = shot.measure_network(**kwargs)
    return measurement, network


def canonical(measurement) -> str:
    return json.dumps(measurement_to_dict(measurement), sort_keys=True)


def rpc_counters(network):
    state = network.faults.rpc
    client = getattr(network, "_rpc_client", None)
    return {
        "injected": (
            state.timeouts,
            state.transient_errors,
            state.rate_limited,
            state.stale_served,
            state.truncated,
            state.flaps,
        ),
        "client": client.counters() if client is not None else {},
    }


class TestRpcFaultPlanValidation:
    def test_default_plan_is_disabled(self):
        plan = RpcFaultPlan()
        assert not plan.enabled
        assert not FaultPlan(rpc=plan).enabled

    def test_enabled_bubbles_up_through_the_wire_plan(self):
        plan = FaultPlan(rpc=RpcFaultPlan(timeout_rate=0.1))
        assert plan.rpc.enabled
        assert plan.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_rate": -0.1},
            {"timeout_rate": 1.5},
            {"error_rate": 2.0},
            {"timeout_rate": 0.6, "error_rate": 0.6},  # sum > 1
            {"rate_limit_per_second": -1.0},
            {"rate_limit_per_second": 5.0, "rate_limit_burst": 0},
            {"stale_rate": -0.2},
            {"stale_lag": 0.0},
            {"truncate_rate": 1.1},
            {"truncate_keep_fraction": 0.0},
            {"truncate_keep_fraction": 1.0},
            {"flap_rate": -0.01},
            {"flap_downtime": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(FaultPlanError):
            RpcFaultPlan(**kwargs)

    def test_uniform_splits_transport_and_doubles_snapshot_faults(self):
        plan = RpcFaultPlan.uniform(0.2)
        assert plan.timeout_rate == pytest.approx(0.1)
        assert plan.error_rate == pytest.approx(0.1)
        assert plan.stale_rate == pytest.approx(0.2)
        assert plan.truncate_rate == pytest.approx(0.2)
        assert plan.rate_limit_per_second == 0.0  # not part of the knob

    def test_uniform_accepts_overrides(self):
        plan = RpcFaultPlan.uniform(0.1, rate_limit_per_second=3.0, flap_rate=0.01)
        assert plan.rate_limit_per_second == 3.0
        assert plan.flap_rate == 0.01

    def test_uniform_rejects_bad_rate(self):
        with pytest.raises(FaultPlanError):
            RpcFaultPlan.uniform(1.5)

    def test_disabled_rpc_plan_installs_no_state(self):
        network = quick_network(n_nodes=4, seed=3)
        network.install_faults(FaultPlan(loss_rate=0.1, rpc=RpcFaultPlan()))
        assert network.faults.rpc is None

    def test_enabled_rpc_plan_installs_state(self):
        network = quick_network(n_nodes=4, seed=3)
        network.install_faults(FaultPlan(rpc=RpcFaultPlan.uniform(0.2)))
        assert network.faults.rpc is not None
        assert network.faults.rpc.plan.timeout_rate == pytest.approx(0.1)


class TestFaultComposition:
    def test_full_zoo_same_seed_is_byte_identical(self):
        """Acceptance bar: RPC faults + loss + churn + crash + Byzantine
        peers, same seed twice -> identical measurement, identical fault
        counters, identical client counters."""

        def run():
            measurement, network = run_campaign(
                91, plan=FaultPlan(**FULL_ZOO), mix=BYZANTINE_MIX
            )
            return canonical(measurement), rpc_counters(network)

        first_canon, first_counters = run()
        second_canon, second_counters = run()
        assert first_canon == second_canon
        assert first_counters == second_counters
        # The composition actually exercised the RPC plane.
        assert sum(first_counters["injected"]) > 0
        assert first_counters["client"]["retries"] > 0

    def test_full_zoo_is_seed_sensitive(self):
        first, _ = run_campaign(92, plan=FaultPlan(**FULL_ZOO))
        second, _ = run_campaign(93, plan=FaultPlan(**FULL_ZOO))
        assert canonical(first) != canonical(second)

    def test_rpc_stream_does_not_perturb_wire_faults(self):
        """Attaching an RPC plan must not change which wire faults fire on
        a fixed workload: the "rpc" stream is named, so the loss/churn/
        crash draw sequences are untouched by flap scheduling or per-call
        draws. (A full *campaign* legitimately diverges — retries stretch
        sim time and change the traffic itself — so the independence claim
        is made where it is exact: identical traffic.)"""
        wire_only = dict(FULL_ZOO, rpc=None)

        def wire_events(plan):
            wallet = Wallet("rpc-stream-independence")
            factory = TransactionFactory()
            network = quick_network(n_nodes=14, seed=94)
            network.install_faults(FaultPlan(**plan))
            node_ids = sorted(nid for nid in network.nodes)
            # Fixed gossip workload: spaced submissions so each push is
            # its own delivery (and its own loss draw).
            for round_index in range(20):
                origin = node_ids[round_index % len(node_ids)]
                tx = factory.transfer(wallet.fresh_account(), gas_price=gwei(2.0))
                network.node(origin).submit_transaction(tx)
                network.run(3.0)
            if plan["rpc"] is not None:
                # Exercise per-call draws too; they must stay on "rpc".
                client = network.rpc_client()
                for node_id in node_ids[:6]:
                    client.pool_snapshot(node_id)
                network.run(30.0)
            return [
                (event.time, event.kind, event.detail)
                for event in network.faults.events
                if not event.kind.startswith("rpc_")
            ]

        with_rpc = wire_events(FULL_ZOO)
        without_rpc = wire_events(wire_only)
        horizon = 60.0  # the shared, identical-traffic window
        assert [e for e in with_rpc if e[0] <= horizon] == [
            e for e in without_rpc if e[0] <= horizon
        ]
        assert without_rpc, "the wire plan must actually fire"

    def test_precision_survives_the_full_zoo(self):
        measurement, _ = run_campaign(
            95, plan=FaultPlan(**FULL_ZOO), mix=BYZANTINE_MIX
        )
        assert measurement.iterations > 0
        assert measurement.score.precision >= 0.95


class TestCheckpointResumeUnderOutage:
    def test_killed_mid_outage_then_resumed_is_deterministic(self, tmp_path):
        """Kill the campaign after its first iteration while the RPC plane
        is faulting, then resume from the checkpoint on a fresh same-seed
        network. The resumed run must itself be deterministic, finish the
        full schedule, and keep the degraded-mode precision guarantee."""
        plan = FaultPlan(rpc=RpcFaultPlan.uniform(0.2))

        class Killed(RuntimeError):
            pass

        def kill_after_first(index, total, iteration, report):
            assert total > 1, "schedule too small to interrupt meaningfully"
            if index >= 1:
                raise Killed

        def killed_then_resumed(path):
            network = quick_network(n_nodes=14, seed=96)
            prefill_mempools(network)
            network.install_faults(plan)
            shot = TopoShot.attach(network)
            with pytest.raises(Killed):
                shot.measure_network(
                    checkpoint_path=path, progress=kill_after_first
                )
            partial = CampaignCheckpoint.load(path)
            assert partial.completed_iterations >= 1
            resumed, _ = run_campaign(
                96, plan=plan, checkpoint_path=path, resume=True
            )
            return partial, resumed

        uninterrupted, _ = run_campaign(96, plan=plan)
        partial, resumed = killed_then_resumed(tmp_path / "a.json")
        assert partial.completed_iterations < uninterrupted.iterations
        assert resumed.iterations == uninterrupted.iterations
        assert resumed.score.precision == 1.0
        # Every edge secured before the kill survives the restart.
        assert partial.edges <= resumed.edges

        # Same seed, same kill point, fresh process: bit-identical resume.
        _, replay = killed_then_resumed(tmp_path / "b.json")
        assert canonical(replay) == canonical(resumed)

    def test_resume_refuses_checkpoint_without_matching_seed(self, tmp_path):
        plan = FaultPlan(rpc=RpcFaultPlan.uniform(0.1))
        path = tmp_path / "ckpt.json"
        run_campaign(97, plan=plan, checkpoint_path=path)
        from repro.errors import CheckpointError

        network = quick_network(n_nodes=14, seed=98)
        prefill_mempools(network)
        network.install_faults(plan)
        shot = TopoShot.attach(network)
        with pytest.raises(CheckpointError):
            shot.measure_network(checkpoint_path=path, resume=True)
