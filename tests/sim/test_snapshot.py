"""Snapshot/reset layer: restore must be bit-exact and refuse unsafe use.

The contract that the sharded executor leans on (see docs/parallelism.md):
after ``restore``, replaying the same workload produces the *identical*
event sequence — same edges, same simulated clock, same RNG draws — and a
snapshot survives any number of restores.
"""

import pytest

from repro.core.campaign import TopoShot
from repro.errors import SnapshotError
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools


def _build(n_nodes=12, seed=7):
    network = quick_network(n_nodes=n_nodes, seed=seed)
    prefill_mempools(network)
    shot = TopoShot.attach(network)
    shot.preprocess()
    network.settle()
    return network, shot


class TestRestoreBitIdentity:
    def test_measurement_replays_identically_after_restore(self):
        network, shot = _build()
        state = shot.snapshot_state()
        first = shot.measure_network(preprocess=False)
        first_now = network.sim.now

        shot.restore_state(state)
        second = shot.measure_network(preprocess=False)

        assert second.edges == first.edges
        assert str(second.score) == str(first.score)
        assert second.duration == first.duration
        assert network.sim.now == first_now

    def test_snapshot_survives_multiple_restores(self):
        network, shot = _build()
        state = shot.snapshot_state()
        reference = shot.measure_network(preprocess=False)
        for _ in range(3):
            shot.restore_state(state)
            replay = shot.measure_network(preprocess=False)
            assert replay.edges == reference.edges
            assert replay.duration == reference.duration

    def test_restore_rewinds_wallet_and_mempools(self):
        network, shot = _build()
        state = shot.snapshot_state()
        pools_before = {
            node_id: len(network.node(node_id).mempool)
            for node_id in network.measurable_node_ids()
        }
        nonce_before = shot.wallet.fresh_account().label

        shot.measure_network(preprocess=False)
        shot.restore_state(state)

        assert {
            node_id: len(network.node(node_id).mempool)
            for node_id in network.measurable_node_ids()
        } == pools_before
        # The wallet's fresh-account counter rewound too: the next fresh
        # account is the same one handed out right after the snapshot.
        assert shot.wallet.fresh_account().label == nonce_before


class TestSnapshotPreconditions:
    def test_pending_events_rejected(self):
        network, shot = _build()
        network.sim.schedule(1.0, lambda: None, label="pending")
        with pytest.raises(SnapshotError):
            network.snapshot()
        network.settle()
        network.snapshot()  # fine once drained

    def test_armed_fault_plan_rejected(self):
        from repro.sim.faults import FaultPlan

        network, shot = _build()
        network.install_faults(FaultPlan(loss_rate=0.1))
        with pytest.raises(SnapshotError):
            network.snapshot()
        network.clear_faults()
        network.snapshot()  # fine once disarmed

    def test_restore_rejects_changed_node_set(self):
        from repro.eth.node import Node

        network, shot = _build()
        state = network.snapshot()
        network.add_node(Node("intruder", network.sim))
        with pytest.raises(SnapshotError):
            network.restore(state)

    def test_restore_rejects_advanced_chain(self):
        from repro.eth.chain import Block

        network, shot = _build()
        state = network.snapshot()
        network.chain.blocks.append(
            Block(
                number=network.chain.height,
                miner="test-miner",
                timestamp=network.sim.now,
                txs=(),
            )
        )
        with pytest.raises(SnapshotError):
            network.restore(state)


class TestAdversarialComposition:
    """Snapshots compose with installed behaviors (and refuse everything
    else): same behavior set -> bit-exact replay, changed set -> error."""

    def _build_byzantine(self):
        from repro.eth.behaviors import BehaviorMix

        network, shot = _build(n_nodes=12, seed=7)
        network.install_behaviors(BehaviorMix.uniform(0.3))
        network.settle()
        return network, shot

    def test_byzantine_measurement_replays_identically(self):
        network, shot = self._build_byzantine()
        state = shot.snapshot_state()
        first = shot.measure_network(preprocess=False)
        actions_first = network.behaviors.total_actions

        shot.restore_state(state)
        assert network.behaviors.total_actions < actions_first or actions_first == 0
        second = shot.measure_network(preprocess=False)

        assert second.edges == first.edges
        assert str(second.score) == str(first.score)
        assert network.behaviors.total_actions == actions_first
        assert network.behaviors.counts  # the adversary actually acted

    def test_restore_rejects_cleared_behaviors(self):
        network, shot = self._build_byzantine()
        state = network.snapshot()
        network.clear_behaviors()
        with pytest.raises(SnapshotError):
            network.restore(state)

    def test_restore_rejects_behaviors_installed_after_snapshot(self):
        from repro.eth.behaviors import BehaviorMix

        network, shot = _build(n_nodes=12, seed=7)
        state = network.snapshot()
        network.install_behaviors(BehaviorMix.uniform(0.3))
        with pytest.raises(SnapshotError):
            network.restore(state)

    def test_snapshot_rejects_installed_invariants(self):
        network, shot = _build(n_nodes=12, seed=7)
        state = network.snapshot()
        network.install_invariants()
        with pytest.raises(SnapshotError):
            network.snapshot()
        with pytest.raises(SnapshotError):
            network.restore(state)
        network.clear_invariants()
        network.restore(state)  # fine again

    def test_armed_faults_with_behaviors_still_rejected(self):
        from repro.sim.faults import FaultPlan

        network, shot = self._build_byzantine()
        network.install_faults(FaultPlan(loss_rate=0.1))
        with pytest.raises(SnapshotError):
            network.snapshot()
        network.clear_faults()
        network.snapshot()
