"""Snapshot/restore round-trip at mainnet scale (20k nodes).

The struct-of-arrays refactor moved the hot state into integer-indexed
arrays and a generation-stamped known-tx table; this test pins the
snapshot contract at a size where those representations actually matter:
capture a quiescent 20k-node world, perturb it with real traffic, restore,
and require the re-captured snapshot to be *deeply equal* to the original
— every RNG stream, mempool, known-tx table, adjacency set and transport
counter bit-identical.
"""

import pytest

from repro.eth.account import Wallet
from repro.eth.transaction import TransactionFactory, gwei
from repro.netgen.ethereum import quick_network

N_NODES = 20_000

# Sparse per-node knobs: the point is the node count (array sizes, interning
# table, per-node state blobs), not edge density, so keep generation cheap.
SPARSE = {
    "outbound_dials": 4,
    "max_peers": 20,
    "routing_table_capacity": 48,
}


@pytest.fixture(scope="module")
def scale_network():
    network = quick_network(n_nodes=N_NODES, seed=3, **SPARSE)
    network.settle()
    return network


def test_snapshot_restore_round_trip_at_20k(scale_network):
    network = scale_network
    baseline = network.snapshot()

    # Perturb the world with real traffic: submissions, gossip, flushes,
    # known-tx table growth — everything the snapshot must rewind.
    wallet = Wallet("scale-snap")
    factory = TransactionFactory()
    ids = network.measurable_node_ids()
    for index in range(5):
        origin = network.node(ids[(index * 997) % len(ids)])
        origin.submit_transaction(
            factory.transfer(wallet.fresh_account(), gas_price=gwei(3.0) + index)
        )
    network.settle()
    perturbed = network.snapshot()
    assert perturbed != baseline  # the traffic must have left a trace

    network.restore(baseline)
    recaptured = network.snapshot()
    assert recaptured == baseline  # bit-identical restored world


def test_interning_stable_across_capture_restore_at_20k(scale_network):
    """Property at scale: the str<->int table is a bijection and survives a
    capture/restore cycle untouched (indices keep naming the same nodes)."""
    network = scale_network
    table_before = network.ids.capture()
    assert len(table_before) == len(set(table_before)) == len(network.nodes)
    network.ids.check_bijection()

    snap = network.snapshot()
    network.restore(snap)

    assert network.ids.capture() == table_before
    network.ids.check_bijection()
    names = network.ids.names
    for index in range(0, N_NODES, 1999):
        name = names[index]
        assert network.node(name).index == index
        assert network.ids.index_of(name) == index
