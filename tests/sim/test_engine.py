"""Tests for the discrete-event engine."""

import pytest

from repro.errors import ScheduleInPastError
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_event_fires_at_scheduled_time(self, sim):
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_events_fire_in_chronological_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []
        for name in "abcde":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == list("abcde")

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ScheduleInPastError):
            sim.schedule(-0.1, lambda: None)

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0.0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_nested_scheduling_from_callback(self, sim):
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(1.0, lambda: order.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(True))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()
        assert sim.executed_events == 0


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_for_advances_relative_duration(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_for(0.5)
        assert sim.now == 0.5
        sim.run_for(1.0)
        assert sim.now == 1.5
        assert sim.executed_events == 1

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_max_events_bound(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=3)
        assert sim.executed_events == 3

    def test_step_returns_false_on_empty_queue(self, sim):
        assert sim.step() is False

    def test_executed_events_counter(self, sim):
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.executed_events == 3
        assert sim.pending_events == 0

    def test_clock_never_goes_backwards(self, sim):
        times = []
        for delay in (5.0, 1.0, 3.0, 1.0, 2.0):
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)


class TestDeterminism:
    def test_same_seed_same_rng_draws(self):
        a = Simulator(seed=1).rng.stream("x").random()
        b = Simulator(seed=1).rng.stream("x").random()
        assert a == b

    def test_different_seed_different_draws(self):
        a = Simulator(seed=1).rng.stream("x").random()
        b = Simulator(seed=2).rng.stream("x").random()
        assert a != b

    def test_tracer_records_when_enabled(self):
        sim = Simulator(seed=0, trace=True)
        sim.schedule(1.0, lambda: None, label="hello")
        sim.run()
        assert len(sim.tracer.filter(kind="event", contains="hello")) == 1


class TestScheduleAtDaemon:
    """Regression tests: ``schedule_at`` used to drop the ``daemon`` flag."""

    def test_schedule_at_threads_daemon_flag(self, sim):
        event = sim.schedule_at(2.0, lambda: None, daemon=True)
        assert event.daemon is True

    def test_schedule_at_daemon_does_not_block_quiescence(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("work"))
        sim.schedule_at(5.0, lambda: fired.append("daemon"), daemon=True)
        sim.run()
        # The open-ended run stops once only daemon events remain; before
        # the fix the t=5 event counted as regular work and executed.
        assert fired == ["work"]
        assert sim.now == 1.0

    def test_recurring_daemon_rescheduled_at_absolute_time(self, sim):
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.schedule_at(sim.now + 1.0, tick, daemon=True)

        sim.schedule_at(1.0, tick, daemon=True)
        sim.schedule(2.5, lambda: ticks.append("work"))
        # max_events bounds the damage if the regression ever returns: a
        # daemon process that loses its flag on reschedule would keep the
        # open-ended run alive and tick forever.
        sim.run(max_events=50)
        assert ticks == [1.0, 2.0, "work"]

    def test_schedule_at_passes_args(self, sim):
        seen = []
        sim.schedule_at(1.0, lambda a, b: seen.append((a, b)), args=(1, 2))
        sim.run()
        assert seen == [(1, 2)]


class TestEngineProfiler:
    def test_profiler_accounts_by_label_category(self, sim):
        profiler = sim.attach_profiler()
        sim.schedule(1.0, lambda: None, "flush:n1")
        sim.schedule(2.0, lambda: None, "flush:n2")
        sim.schedule(3.0, lambda: None, "Transactions:a->b")
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert profiler.total_events == 4
        stats = profiler.as_dict()
        assert stats["flush"]["events"] == 2
        assert stats["Transactions"]["events"] == 1
        assert stats[profiler.UNLABELED]["events"] == 1
        assert all(entry["seconds"] >= 0.0 for entry in stats.values())

    def test_report_lists_categories(self, sim):
        profiler = sim.attach_profiler()
        sim.schedule(1.0, lambda: None, "flush:n1")
        sim.run()
        report = profiler.report()
        assert "flush" in report
        assert "total" in report

    def test_detach_profiler_stops_accounting(self, sim):
        profiler = sim.attach_profiler()
        sim.schedule(1.0, lambda: None, "flush:n1")
        sim.run()
        sim.detach_profiler()
        sim.schedule(1.0, lambda: None, "flush:n2")
        sim.run()
        assert profiler.total_events == 1

    def test_wants_labels_follows_attachments(self, sim):
        assert not sim.wants_labels
        sim.attach_profiler()
        assert sim.wants_labels
        sim.detach_profiler()
        assert not sim.wants_labels


class TestScheduleCall:
    """Fire-and-forget entries must interleave exactly with Event entries."""

    def test_orders_with_regular_events(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("event"))
        sim.schedule_call(1.0, order.append, args=("early",))
        sim.schedule_call(2.0, order.append, args=("tied-later",))
        sim.run()
        # The tie at t=2.0 resolves by scheduling order (seq), not by shape.
        assert order == ["early", "event", "tied-later"]

    def test_counts_as_non_daemon(self, sim):
        fired = []
        sim.schedule(1.0, lambda: None, daemon=True)
        sim.schedule_call(5.0, fired.append, args=("late",))
        sim.run()  # open-ended: must not quiesce before the call entry
        assert fired == ["late"]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ScheduleInPastError):
            sim.schedule_call(-0.1, lambda: None)

    def test_step_handles_call_entries(self, sim):
        order = []
        sim.schedule_call(1.0, order.append, args=("a",))
        sim.schedule(2.0, lambda: order.append("b"))
        assert sim.step()
        assert order == ["a"] and sim.now == 1.0
        assert sim.step()
        assert not sim.step()
        assert order == ["a", "b"]

    def test_traced_and_profiled_like_events(self, sim):
        sim.tracer = Tracer()
        profiler = sim.attach_profiler()
        sim.schedule_call(1.0, lambda: None, "deliver:a->b")
        sim.run()
        assert [r.detail for r in sim.tracer] == ["deliver:a->b"]
        assert profiler.as_dict()["deliver"]["events"] == 1

    def test_cancelled_event_then_call_entry_runs(self, sim):
        order = []
        handle = sim.schedule(1.0, lambda: order.append("cancelled"))
        sim.schedule_call(2.0, order.append, args=("call",))
        handle.cancel()
        sim.run()
        assert order == ["call"]
