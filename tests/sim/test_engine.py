"""Tests for the discrete-event engine."""

import pytest

from repro.errors import ScheduleInPastError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_event_fires_at_scheduled_time(self, sim):
        fired = []
        sim.schedule(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]

    def test_events_fire_in_chronological_order(self, sim):
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []
        for name in "abcde":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == list("abcde")

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ScheduleInPastError):
            sim.schedule(-0.1, lambda: None)

    def test_zero_delay_allowed(self, sim):
        fired = []
        sim.schedule(0.0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_nested_scheduling_from_callback(self, sim):
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(1.0, lambda: order.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(True))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()
        assert sim.executed_events == 0


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_for_advances_relative_duration(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_for(0.5)
        assert sim.now == 0.5
        sim.run_for(1.0)
        assert sim.now == 1.5
        assert sim.executed_events == 1

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_max_events_bound(self, sim):
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        sim.run(max_events=3)
        assert sim.executed_events == 3

    def test_step_returns_false_on_empty_queue(self, sim):
        assert sim.step() is False

    def test_executed_events_counter(self, sim):
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.executed_events == 3
        assert sim.pending_events == 0

    def test_clock_never_goes_backwards(self, sim):
        times = []
        for delay in (5.0, 1.0, 3.0, 1.0, 2.0):
            sim.schedule(delay, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)


class TestDeterminism:
    def test_same_seed_same_rng_draws(self):
        a = Simulator(seed=1).rng.stream("x").random()
        b = Simulator(seed=1).rng.stream("x").random()
        assert a == b

    def test_different_seed_different_draws(self):
        a = Simulator(seed=1).rng.stream("x").random()
        b = Simulator(seed=2).rng.stream("x").random()
        assert a != b

    def test_tracer_records_when_enabled(self):
        sim = Simulator(seed=0, trace=True)
        sim.schedule(1.0, lambda: None, label="hello")
        sim.run()
        assert len(sim.tracer.filter(kind="event", contains="hello")) == 1
