"""Tests for the batched heavy-traffic workload engine.

Pins the O(ticks) contract: exact long-run offered rate, deterministic
same-seed runs, bounded per-tick materialization, shape modulators
(bursts, diurnal cycles, replacement races), statistical fee-floor
accounting, and prefill equivalence via ``add_batch``.
"""

import pytest

from repro.errors import MeasurementError
from repro.eth.mempool import Mempool
from repro.eth.policies import GETH
from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import (
    SHAPES,
    BatchedWorkload,
    WorkloadShape,
    diurnal_load,
    mev_replacement_race,
    nft_mint_storm,
    prefill_mempools,
    spam_flood,
    steady,
)


def run_workload(network, shape, seconds=10.0, **kwargs):
    workload = BatchedWorkload(network, shape, **kwargs)
    workload.start()
    network.sim.run(until=network.sim.now + seconds)
    workload.stop()
    return workload


class TestShapes:
    def test_registry_builds_every_shape(self):
        for name, build in SHAPES.items():
            shape = build()
            assert isinstance(shape, WorkloadShape)
            assert shape.rate_per_second > 0

    def test_flat_rate_without_modulators(self):
        shape = steady(rate_per_second=100.0)
        assert shape.rate_at(0.0) == shape.rate_at(1234.5) == 100.0

    def test_burst_window_multiplies(self):
        shape = nft_mint_storm(
            rate_per_second=10.0,
            burst_every=60.0,
            burst_duration=5.0,
            burst_multiplier=20.0,
        )
        assert shape.rate_at(61.0) == pytest.approx(200.0)
        assert shape.rate_at(30.0) == pytest.approx(10.0)

    def test_diurnal_sinusoid(self):
        shape = diurnal_load(
            rate_per_second=100.0,
            diurnal_period=86400.0,
            diurnal_amplitude=0.6,
        )
        rates = [shape.rate_at(t) for t in range(0, 86400, 3600)]
        assert max(rates) == pytest.approx(160.0, rel=0.01)
        assert min(rates) == pytest.approx(40.0, rel=0.01)
        # The mean over one period is the nominal rate.
        assert sum(rates) / len(rates) == pytest.approx(100.0, rel=0.02)


class TestBatchedEngine:
    def test_offered_count_is_exact_for_integer_rates(self):
        network = quick_network(10, seed=5)
        workload = run_workload(network, steady(rate_per_second=50000.0))
        assert workload.stats["ticks"] == 10
        assert workload.stats["offered"] == 500000
        assert workload.offered_rate() == pytest.approx(50000.0)

    def test_materialization_bounded_per_tick(self):
        network = quick_network(10, seed=5)
        workload = run_workload(
            network, steady(rate_per_second=50000.0), materialize_cap=64
        )
        stats = workload.stats
        assert stats["materialized"] <= 64 * stats["ticks"]
        assert stats["materialized"] + stats["statistical"] + stats[
            "floor_rejected"
        ] == stats["offered"]
        assert stats["admitted"] > 0

    def test_deterministic_across_same_seed_runs(self):
        def run():
            network = quick_network(10, seed=17)
            network.install_fee_market()
            prefill_mempools(network)
            workload = run_workload(
                network,
                steady(rate_per_second=20000.0, median_price=gwei(2.0)),
                materialize_cap=32,
            )
            digest = sorted(
                (nid, len(network.node(nid).mempool))
                for nid in network.measurable_node_ids()
            )
            return workload.stats, digest

        assert run() == run()

    def test_floor_counts_casualties_statistically(self):
        network = quick_network(10, seed=5)
        network.install_fee_market()
        prefill_mempools(network, median_price=gwei(1.0))
        # Spam priced entirely under the ambient floor: every offered tx
        # is floor fodder and none is ever constructed.
        workload = run_workload(
            network, spam_flood(rate_per_second=50000.0, median_price=gwei(0.01))
        )
        stats = workload.stats
        assert stats["offered"] == 500000
        assert stats["floor_rejected"] == stats["offered"]
        assert stats["materialized"] == 0
        assert stats["admitted"] == 0

    def test_no_market_means_no_floor_rejections(self):
        network = quick_network(10, seed=5)
        workload = run_workload(
            network, spam_flood(rate_per_second=1000.0)
        )
        assert workload.stats["floor_rejected"] == 0
        assert workload.stats["admitted"] > 0

    def test_replacement_race_submits_replacements(self):
        network = quick_network(10, seed=5)
        workload = run_workload(
            network,
            mev_replacement_race(
                rate_per_second=500.0, replacement_fraction=0.5
            ),
            materialize_cap=32,
        )
        assert workload.stats["replacements"] > 0

    def test_validation(self):
        network = quick_network(4, seed=1)
        with pytest.raises(MeasurementError):
            BatchedWorkload(network, steady(), tick_interval=0.0)
        with pytest.raises(MeasurementError):
            BatchedWorkload(network, steady(), materialize_cap=0)
        with pytest.raises(MeasurementError):
            BatchedWorkload(network, steady(), price_table_size=4)

    def test_engine_cost_is_per_tick_not_per_tx(self):
        """The event count must not scale with the offered rate."""

        def events_for(rate):
            network = quick_network(8, seed=23)
            run_workload(network, steady(rate_per_second=rate), seconds=5.0)
            return network.sim.executed_events

        low, high = events_for(100.0), events_for(100000.0)
        # Identical tick count; the only divergence allowed is bounded
        # per-tick pool work, not per-offered-tx events.
        assert high <= low * 1.5


class TestPrefillViaBatch:
    def test_prefill_fills_to_capacity(self):
        network = quick_network(8, seed=11)
        txs = prefill_mempools(network, median_price=gwei(1.0))
        for node_id in network.measurable_node_ids():
            pool = network.node(node_id).mempool
            assert pool.is_full
            assert pool.pending_count == len(pool)
        assert len(txs) >= max(
            network.node(nid).config.policy.capacity
            for nid in network.measurable_node_ids()
        )

    def test_prefill_consistent_across_nodes(self):
        network = quick_network(8, seed=11)
        prefill_mempools(network)
        views = {
            frozenset(network.node(nid).mempool._by_hash)
            for nid in network.measurable_node_ids()
            if network.node(nid).config.policy.capacity
            == min(
                network.node(m).config.policy.capacity
                for m in network.measurable_node_ids()
            )
        }
        # Same insertion order + same capacity => same content.
        assert len(views) == 1

    def test_floor_aware_prefill_keeps_pools_full(self):
        network = quick_network(8, seed=11)
        network.install_fee_market()
        prefill_mempools(network, median_price=gwei(1.0))
        # Raise the floor well above ambient, then refresh: senders bid
        # the floor rather than being rejected en masse.
        market = network.fee_market
        market.floor_for(network.sim.now + market.config.update_interval)
        floor = market.floor
        assert floor > 0
        for node_id in network.measurable_node_ids():
            network.node(node_id).mempool.clear()
        prefill_mempools(
            network, median_price=max(1, floor // 4), count=None
        )
        for node_id in network.measurable_node_ids():
            pool = network.node(node_id).mempool
            assert pool.is_full
            assert min(pool.pending_prices()) >= min(
                floor, market.floor_for(network.sim.now)
            )
