"""Tests for random-graph baselines."""

import random

import networkx as nx
import pytest

from repro.errors import AnalysisError
from repro.netgen.topology import (
    average_degree,
    ba_graph,
    configuration_model_graph,
    degree_sequence,
    ensure_connected,
    er_graph,
    matched_baselines,
)


class TestER:
    def test_exact_node_and_edge_counts(self):
        graph = er_graph(50, 120, seed=1)
        assert graph.number_of_nodes() == 50
        assert graph.number_of_edges() == 120

    def test_seeded_determinism(self):
        assert set(er_graph(20, 30, seed=5).edges()) == set(
            er_graph(20, 30, seed=5).edges()
        )

    def test_too_many_edges_rejected(self):
        with pytest.raises(AnalysisError):
            er_graph(5, 11)


class TestConfigurationModel:
    def test_preserves_degree_sum_approximately(self):
        degrees = [5, 4, 4, 3, 3, 3, 2, 2, 1, 1]
        graph = configuration_model_graph(degrees, seed=2)
        # Self-loops/multi-edges are stripped, so <= the requested total.
        assert graph.number_of_nodes() == len(degrees)
        assert sum(d for _, d in graph.degree()) <= sum(degrees)

    def test_odd_degree_sum_patched(self):
        graph = configuration_model_graph([3, 2, 2], seed=3)
        assert graph.number_of_nodes() == 3

    def test_is_simple_graph(self):
        graph = configuration_model_graph([4] * 10, seed=4)
        assert not any(u == v for u, v in graph.edges())

    def test_empty_sequence_rejected(self):
        with pytest.raises(AnalysisError):
            configuration_model_graph([])


class TestBA:
    def test_average_degree_matched_roughly(self):
        graph = ba_graph(200, average_degree=10, seed=5)
        assert 8 <= average_degree(graph) <= 11

    def test_small_network_rejected(self):
        with pytest.raises(AnalysisError):
            ba_graph(1, 4)


class TestHelpers:
    def test_degree_sequence_sorted_desc(self):
        graph = er_graph(20, 40, seed=6)
        sequence = degree_sequence(graph)
        assert sequence == sorted(sequence, reverse=True)

    def test_average_degree_formula(self):
        graph = nx.path_graph(4)  # 3 edges, 4 nodes
        assert average_degree(graph) == 1.5

    def test_matched_baselines_dimensions(self):
        measured = er_graph(40, 100, seed=7)
        baselines = matched_baselines(measured, seed=7)
        assert set(baselines) == {"ER", "CM", "BA"}
        for graph in baselines.values():
            assert graph.number_of_nodes() == 40

    def test_ensure_connected(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3), (4, 5)])
        added = ensure_connected(graph, random.Random(1))
        assert added == 2
        assert nx.is_connected(graph)
