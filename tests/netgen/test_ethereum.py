"""Tests for the Ethereum-like topology generator."""

import networkx as nx
import pytest

from repro.netgen.ethereum import (
    NetworkSpec,
    generate_network,
    goerli_like,
    quick_network,
    rinkeby_like,
    ropsten_like,
)


class TestGeneration:
    def test_node_count_and_connectivity(self):
        network = quick_network(n_nodes=30, seed=1)
        graph = network.ground_truth_graph()
        assert graph.number_of_nodes() == 30
        assert nx.is_connected(graph)

    def test_seeded_determinism(self):
        edges_a = set(quick_network(25, seed=9).ground_truth_graph().edges())
        edges_b = set(quick_network(25, seed=9).ground_truth_graph().edges())
        assert edges_a == edges_b

    def test_different_seeds_differ(self):
        edges_a = set(quick_network(25, seed=1).ground_truth_graph().edges())
        edges_b = set(quick_network(25, seed=2).ground_truth_graph().edges())
        assert edges_a != edges_b

    def test_average_degree_tracks_outbound_dials(self):
        spec = NetworkSpec(n_nodes=50, seed=3, outbound_dials=6, max_peers=30)
        graph = generate_network(spec).ground_truth_graph()
        avg = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert 6 <= avg <= 13  # ~2x dials minus rejected attempts

    def test_max_peers_respected(self):
        spec = NetworkSpec(n_nodes=40, seed=4, outbound_dials=10, max_peers=12)
        network = generate_network(spec)
        for node_id in network.measurable_node_ids():
            assert network.node(node_id).degree <= 12

    def test_routing_tables_populated(self):
        network = quick_network(n_nodes=20, seed=5)
        for node_id in network.measurable_node_ids():
            table = network.node(node_id).routing_table
            assert table
            assert node_id not in table

    def test_policies_scaled_consistently(self):
        network = quick_network(n_nodes=10, seed=6, mempool_capacity=256)
        geth_nodes = [
            network.node(nid)
            for nid in network.measurable_node_ids()
            if network.node(nid).config.client_version.startswith("Geth")
        ]
        default_capacity = {
            n.config.policy.capacity for n in geth_nodes
        }
        assert 256 in default_capacity


class TestHeterogeneity:
    def test_fractions_realized(self):
        spec = NetworkSpec(
            n_nodes=200,
            seed=7,
            fraction_custom_capacity=0.2,
            fraction_non_relaying=0.2,
            fraction_future_forwarders=0.2,
            fraction_future_echoers=0.2,
            fraction_rpc_disabled=0.2,
            parity_fraction=0.2,
        )
        network = generate_network(spec)
        nodes = [network.node(nid) for nid in network.measurable_node_ids()]
        customs = sum(1 for n in nodes if n.config.policy.capacity > 256)
        silents = sum(1 for n in nodes if not n.config.relays_transactions)
        forwarders = sum(1 for n in nodes if n.config.forwards_future)
        echoers = sum(1 for n in nodes if n.config.echoes_future_to_sender)
        no_rpc = sum(1 for n in nodes if not n.config.responds_to_rpc)
        parity = sum(
            1 for n in nodes if n.config.client_version.startswith("OpenEthereum")
        )
        for count in (customs, silents, forwarders, echoers, no_rpc, parity):
            assert 15 <= count <= 70  # ~20% of 200, loose binomial bounds

    def test_hubs_have_high_degree(self):
        spec = goerli_like(seed=8)
        network = generate_network(spec)
        hubs = [spec.node_id(i) for i in range(spec.n_hubs)]
        graph = network.ground_truth_graph()
        hub_degrees = [graph.degree(h) for h in hubs]
        others = [
            graph.degree(n) for n in graph.nodes() if n not in hubs
        ]
        assert min(hub_degrees) > 2 * (sum(others) / len(others))


class TestPresets:
    @pytest.mark.parametrize(
        "preset,expected_name",
        [(ropsten_like, "ropsten"), (rinkeby_like, "rinkeby"), (goerli_like, "goerli")],
    )
    def test_preset_shapes(self, preset, expected_name):
        spec = preset(seed=1)
        assert spec.name == expected_name
        assert spec.n_nodes >= 40
        assert spec.mempool_capacity >= 512

    def test_rinkeby_denser_than_ropsten(self):
        ropsten = generate_network(ropsten_like(seed=2)).ground_truth_graph()
        rinkeby = generate_network(rinkeby_like(seed=2)).ground_truth_graph()
        density_r = 2 * ropsten.number_of_edges() / (
            ropsten.number_of_nodes() * (ropsten.number_of_nodes() - 1)
        )
        density_k = 2 * rinkeby.number_of_edges() / (
            rinkeby.number_of_nodes() * (rinkeby.number_of_nodes() - 1)
        )
        assert density_k > density_r

    def test_preset_overrides(self):
        spec = ropsten_like(seed=3, n_nodes=30)
        assert spec.n_nodes == 30
        assert spec.name == "ropsten"
