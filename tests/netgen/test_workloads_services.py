"""Tests for background workloads and mainnet service overlays."""

import pytest

from repro.eth.transaction import gwei
from repro.netgen.ethereum import quick_network
from repro.netgen.services import (
    DEFAULT_SCALED_COUNTS,
    MainnetSpec,
    PAPER_SERVICE_COUNTS,
    discover_critical_nodes,
    mainnet_like,
)
from repro.netgen.workloads import (
    BackgroundWorkload,
    prefill_mempools,
    refresh_mempools,
)


class TestPrefill:
    def test_fills_every_pool(self):
        network = quick_network(n_nodes=10, seed=1)
        prefill_mempools(network, median_price=gwei(1.0))
        for node_id in network.measurable_node_ids():
            assert network.node(node_id).mempool.is_full

    def test_same_content_everywhere(self):
        network = quick_network(n_nodes=6, seed=2)
        txs = prefill_mempools(network)
        first = network.node(network.measurable_node_ids()[0]).mempool
        for node_id in network.measurable_node_ids()[1:]:
            pool = network.node(node_id).mempool
            if len(pool) == len(first):
                assert {t.hash for t in pool.all_transactions()} == {
                    t.hash for t in first.all_transactions()
                }

    def test_all_prefilled_are_pending(self):
        network = quick_network(n_nodes=5, seed=3)
        prefill_mempools(network)
        for node_id in network.measurable_node_ids():
            pool = network.node(node_id).mempool
            assert pool.future_count == 0

    def test_median_price_near_request(self):
        network = quick_network(n_nodes=5, seed=4)
        prefill_mempools(network, median_price=gwei(2.0), sigma=0.3)
        pool = network.node(network.measurable_node_ids()[0]).mempool
        median = pool.median_pending_price()
        assert gwei(1.5) <= median <= gwei(2.7)

    def test_explicit_count(self):
        network = quick_network(n_nodes=4, seed=5)
        txs = prefill_mempools(network, count=10)
        assert len(txs) == 10

    def test_refresh_replaces_content(self):
        network = quick_network(n_nodes=4, seed=6)
        old = prefill_mempools(network)
        new = refresh_mempools(network)
        pool = network.node(network.measurable_node_ids()[0]).mempool
        hashes = {t.hash for t in pool.all_transactions()}
        assert hashes.isdisjoint({t.hash for t in old})
        assert hashes <= {t.hash for t in new}


class TestBackgroundWorkload:
    def test_submissions_propagate(self):
        network = quick_network(n_nodes=8, seed=7)
        workload = BackgroundWorkload(network, rate_per_second=10.0)
        workload.start()
        network.run(10.0)
        workload.stop()
        assert len(workload.submitted) > 50
        sample = workload.submitted[0]
        holders = sum(
            1
            for nid in network.measurable_node_ids()
            if sample.hash in network.node(nid).mempool
        )
        assert holders >= len(network.measurable_node_ids()) // 2

    def test_stop_halts_submission(self):
        network = quick_network(n_nodes=4, seed=8)
        workload = BackgroundWorkload(network, rate_per_second=5.0)
        workload.start()
        network.run(2.0)
        workload.stop()
        count = len(workload.submitted)
        network.run(5.0)
        assert len(workload.submitted) == count

    def test_rejects_bad_rate(self):
        network = quick_network(n_nodes=4, seed=9)
        with pytest.raises(ValueError):
            BackgroundWorkload(network, rate_per_second=0)


class TestMainnetServices:
    def test_scaled_counts_follow_paper_ordering(self):
        """SrvM1 and SrvR1 are the biggest services, SrvM6/SrvR2 singletons,
        as in Section 6.3's discovery results."""
        assert PAPER_SERVICE_COUNTS["SrvM1"] == 59
        assert PAPER_SERVICE_COUNTS["SrvR1"] == 48
        assert DEFAULT_SCALED_COUNTS["SrvR2"] == 1
        assert DEFAULT_SCALED_COUNTS["SrvM6"] == 1

    def test_directory_and_wiring_bias(self):
        network, directory = mainnet_like(MainnetSpec(n_regular=30, seed=1))
        r1 = directory.members["SrvR1"]
        r2 = directory.members["SrvR2"][0]
        m1 = directory.members["SrvM1"]
        m2 = directory.members["SrvM2"]
        # SrvR1 interconnects and reaches every pool node.
        assert network.are_connected(r1[0], r1[1])
        assert all(network.are_connected(r1[0], node) for node in m1 + m2)
        # SrvR2 has no preferential links.
        assert not any(network.are_connected(r2, node) for node in r1 + m1)
        # SrvM1 nodes avoid each other; SrvM2 nodes interconnect.
        assert not network.are_connected(m1[0], m1[1])
        assert network.are_connected(m2[0], m2[1])

    def test_discovery_matches_directory(self):
        network, directory = mainnet_like(MainnetSpec(n_regular=20, seed=2))
        discovered = discover_critical_nodes(network, directory)
        for service, members in directory.members.items():
            assert sorted(discovered[service]) == sorted(members)

    def test_regular_nodes_not_discovered(self):
        network, directory = mainnet_like(MainnetSpec(n_regular=20, seed=3))
        discovered = discover_critical_nodes(network, directory)
        all_discovered = {n for ids in discovered.values() for n in ids}
        regular = set(network.measurable_node_ids()) - set(
            directory.all_service_nodes()
        )
        assert all_discovered.isdisjoint(regular)

    def test_service_of_lookup(self):
        _, directory = mainnet_like(MainnetSpec(n_regular=10, seed=4))
        node = directory.members["SrvM3"][0]
        assert directory.service_of(node) == "SrvM3"
        assert directory.service_of("nobody") is None
