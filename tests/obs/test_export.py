"""Tests for the JSON-lines, Prometheus and CSV exporters."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import EventLog
from repro.obs.export import (
    events_to_jsonl,
    metrics_to_csv,
    metrics_to_jsonl,
    metrics_to_prometheus,
    resolve_format,
    write_events,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("msgs_total", "messages sent", labels={"kind": "tx"}).inc(7)
    reg.gauge("pool_size", "buffered txs").set(42)
    hist = reg.histogram("latency_seconds", "probe latency")
    for value in (0.1, 0.2, 0.3):
        hist.observe(value)
    return reg


class TestJsonl:
    def test_one_valid_object_per_line(self, registry):
        lines = metrics_to_jsonl(registry).splitlines()
        samples = [json.loads(line) for line in lines]
        assert len(samples) == 3
        by_name = {sample["name"]: sample for sample in samples}
        assert by_name["msgs_total"]["value"] == 7
        assert by_name["msgs_total"]["labels"] == {"kind": "tx"}
        assert by_name["latency_seconds"]["count"] == 3

    def test_empty_registry_renders_empty(self):
        assert metrics_to_jsonl(MetricsRegistry()) == ""

    def test_collectors_run_before_render(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g")
        reg.add_collector(lambda: gauge.set(99))
        assert json.loads(metrics_to_jsonl(reg))["value"] == 99


class TestPrometheus:
    def test_help_type_and_samples(self, registry):
        text = metrics_to_prometheus(registry)
        assert "# HELP msgs_total messages sent" in text
        assert "# TYPE msgs_total counter" in text
        assert 'msgs_total{kind="tx"} 7' in text
        assert "# TYPE pool_size gauge" in text
        assert "pool_size 42" in text

    def test_histogram_renders_as_summary(self, registry):
        text = metrics_to_prometheus(registry)
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.5"} 0.2' in text
        assert 'latency_seconds{quantile="0.99"}' in text
        assert "latency_seconds_count 3" in text
        assert "latency_seconds_sum" in text

    def test_header_emitted_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("c", "help", labels={"kind": "a"}).inc()
        reg.counter("c", "help", labels={"kind": "b"}).inc()
        text = metrics_to_prometheus(reg)
        assert text.count("# TYPE c counter") == 1
        assert text.count("# HELP c help") == 1

    def test_invalid_name_and_label_value_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("bad-name.metric", labels={"detail": 'say "hi"\nbye'}).inc()
        text = metrics_to_prometheus(reg)
        assert "bad_name_metric" in text
        assert '\\"hi\\"' in text
        assert "\\n" in text


class TestCsv:
    def test_header_and_rows(self, registry):
        rows = metrics_to_csv(registry).splitlines()
        assert rows[0] == "name,type,labels,field,value"
        # 1 counter row + 1 gauge row + 7 histogram field rows.
        assert len(rows) == 1 + 1 + 1 + 7
        assert "msgs_total,counter,kind=tx,value,7" in rows
        histogram_fields = [
            row.split(",")[3] for row in rows if row.startswith("latency")
        ]
        assert histogram_fields == [
            "count", "sum", "min", "max", "p50", "p90", "p99",
        ]

    def test_cells_with_commas_are_quoted(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"pair": "a,b"}).inc()
        text = metrics_to_csv(reg)
        assert '"pair=a,b"' in text


class TestResolveFormat:
    @pytest.mark.parametrize(
        ("path", "expected"),
        [
            ("m.jsonl", "jsonl"),
            ("m.json", "jsonl"),
            ("m.prom", "prometheus"),
            ("m.txt", "prometheus"),
            ("m.csv", "csv"),
        ],
    )
    def test_suffix_inference(self, path, expected):
        assert resolve_format(path) == expected

    def test_explicit_fmt_wins_and_prom_aliases(self):
        assert resolve_format("m.csv", fmt="jsonl") == "jsonl"
        assert resolve_format("whatever", fmt="prom") == "prometheus"

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ObservabilityError):
            resolve_format("metrics.xml")

    def test_unknown_fmt_rejected(self):
        with pytest.raises(ObservabilityError):
            resolve_format("m.jsonl", fmt="yaml")


class TestWriters:
    def test_write_metrics_infers_format(self, registry, tmp_path):
        target = write_metrics(registry, tmp_path / "out.prom")
        assert target.read_text().startswith("# HELP")
        target = write_metrics(registry, tmp_path / "out.jsonl")
        assert json.loads(target.read_text().splitlines()[0])

    def test_write_events_jsonl(self, tmp_path):
        log = EventLog(capacity=4)
        log.append(1.0, "drop", "loss", "a", "b")
        target = write_events(log, tmp_path / "trace.jsonl")
        record = json.loads(target.read_text())
        assert record == {"time": 1.0, "kind": "drop", "fields": ["loss", "a", "b"]}

    def test_events_window_is_most_recent(self):
        log = EventLog(capacity=2)
        for i in range(4):
            log.append(float(i), "e", i)
        fields = [json.loads(line)["fields"] for line in events_to_jsonl(log).splitlines()]
        assert fields == [[2], [3]]
