"""Tests for the observability wiring across the stack.

Covers the acceptance criterion for PR 3: a campaign run with
observability enabled produces a valid JSON-lines and Prometheus export,
while a disabled bundle leaves the measurement untouched.
"""

import json

import pytest

from repro.core.campaign import TopoShot
from repro.netgen.ethereum import quick_network
from repro.netgen.workloads import prefill_mempools
from repro.obs import NULL, Observability
from repro.obs import wiring
from repro.obs.export import (
    events_to_jsonl,
    metrics_to_jsonl,
    metrics_to_prometheus,
    write_events,
    write_metrics,
)
from repro.obs.wiring import instrument_network, instrument_simulator
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan


class TestNullBundle:
    def test_null_is_disabled_and_noop(self):
        assert NULL.enabled is False
        NULL.emit(0.0, "anything", 1, 2)  # must not record
        assert len(NULL.events) == 0
        instrument = NULL.counter("c")
        instrument.inc()
        instrument.observe(1.0)
        assert len(NULL.metrics) == 0
        # The shared no-op instrument is a singleton across factories.
        assert NULL.gauge("g") is NULL.histogram("h")

    def test_disabled_wiring_registers_nothing(self):
        obs = Observability.disabled()
        network = quick_network(n_nodes=6, seed=11)
        instrument_simulator(obs, network.sim)
        instrument_network(obs, network)
        assert len(obs.metrics) == 0
        assert obs.metrics.collect() == []


class TestSimulatorWiring:
    def test_collect_mirrors_engine_counters(self):
        sim = Simulator()
        obs = Observability()
        instrument_simulator(obs, sim)
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        samples = {s["name"]: s for s in obs.metrics.snapshot()}
        assert samples[wiring.SIM_EVENTS_EXECUTED]["value"] == sim.executed_events
        assert samples[wiring.SIM_TIME]["value"] == sim.now == 2.0

    def test_attach_observability_feeds_event_log(self):
        sim = Simulator()
        obs = sim.attach_observability(log_events=True)
        sim.schedule(1.0, lambda: None, label="probe")
        sim.run()
        kinds = {record[1] for record in obs.events}
        assert "event" in kinds
        assert sim.event_log is obs.events
        sim.detach_observability()
        assert sim.event_log is None

    def test_attach_disabled_bundle_keeps_log_off(self):
        sim = Simulator()
        sim.attach_observability(Observability.disabled(), log_events=True)
        assert sim.event_log is None


class TestNetworkWiring:
    def test_install_is_idempotent(self):
        network = quick_network(n_nodes=6, seed=12)
        obs = Observability()
        network.install_observability(obs)
        network.install_observability(obs)  # same bundle: no-op
        before = len(obs.metrics.collect())
        assert len(obs.metrics.collect()) == before
        samples = {s["name"]: s for s in obs.metrics.snapshot()}
        assert samples[wiring.NODES]["value"] == len(network.nodes)
        assert samples[wiring.LINKS]["value"] == network.link_count

    def test_clear_restores_null(self):
        network = quick_network(n_nodes=6, seed=12)
        network.install_observability(Observability())
        assert network.obs.enabled
        network.clear_observability()
        assert network.obs is NULL

    def test_per_node_series(self):
        network = quick_network(n_nodes=5, seed=13)
        obs = Observability()
        network.install_observability(obs, per_node=True)
        obs.metrics.collect()
        node_series = [
            instrument
            for instrument in obs.metrics.collect()
            if instrument.name == wiring.MEMPOOL_TRANSACTIONS
            and dict(instrument.labels).get("node")
        ]
        assert len(node_series) == len(network.nodes)


class TestCampaignExports:
    @pytest.fixture(scope="class")
    def measured(self):
        network = quick_network(n_nodes=10, seed=41)
        prefill_mempools(network)
        network.install_faults(FaultPlan(loss_rate=0.02))
        obs = Observability()
        shot = TopoShot.attach(network, obs=obs)
        measurement = shot.measure_network()
        return network, obs, measurement

    def test_campaign_metrics_populated(self, measured):
        _, obs, measurement = measured
        samples = {s["name"]: s for s in obs.metrics.snapshot()}
        assert samples[wiring.CAMPAIGN_ITERATIONS]["value"] > 0
        assert samples[wiring.CAMPAIGN_EDGES]["value"] == len(measurement.edges)
        assert samples[wiring.CAMPAIGN_TXS]["value"] > 0
        assert samples[wiring.MESSAGES_SENT]["value"] > 0
        assert (
            samples[wiring.CAMPAIGN_ITER_WALL_SECONDS]["count"]
            == samples[wiring.CAMPAIGN_ITERATIONS]["value"]
        )

    def test_jsonl_export_is_valid(self, measured, tmp_path):
        _, obs, _ = measured
        target = write_metrics(obs.metrics, tmp_path / "campaign.jsonl")
        samples = [json.loads(line) for line in target.read_text().splitlines()]
        assert samples
        names = {sample["name"] for sample in samples}
        assert wiring.CAMPAIGN_ITERATIONS in names
        assert all(sample["name"].startswith("toposhot_") for sample in samples)

    def test_prometheus_export_is_valid(self, measured):
        _, obs, _ = measured
        text = metrics_to_prometheus(obs.metrics)
        assert f"# TYPE {wiring.CAMPAIGN_ITERATIONS} counter" in text
        assert f"# TYPE {wiring.CAMPAIGN_ITER_SIM_SECONDS} summary" in text
        # Every non-comment line is "name{labels} value".
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)  # parses as a number

    def test_event_log_captures_campaign_story(self, measured, tmp_path):
        _, obs, _ = measured
        kinds = {record[1] for record in obs.events}
        assert "campaign.iteration" in kinds
        target = write_events(obs.events, tmp_path / "trace.jsonl")
        for line in target.read_text().splitlines():
            record = json.loads(line)
            assert {"time", "kind", "fields"} <= set(record)

    def test_fault_counters_mirrored(self, measured):
        network, obs, _ = measured
        samples = {s["name"]: s for s in obs.metrics.snapshot()}
        assert (
            samples[wiring.FAULT_MESSAGES_DROPPED]["value"]
            == network.faults.messages_dropped
        )


class TestObservabilityNeutrality:
    def test_enabled_observability_does_not_change_edges(self):
        def run(obs):
            network = quick_network(n_nodes=8, seed=77)
            prefill_mempools(network)
            shot = TopoShot.attach(network, obs=obs)
            return shot.measure_network().edges

        bare = run(None)
        observed = run(Observability())
        assert bare == observed

    def test_empty_exports_render_empty(self):
        obs = Observability()
        assert metrics_to_jsonl(obs.metrics) == ""
        assert events_to_jsonl(obs.events) == ""
