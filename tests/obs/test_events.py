"""Tests for the ring-buffered structured event log."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import EventLog


class TestEventLog:
    def test_records_in_order_with_fields(self):
        log = EventLog(capacity=8)
        log.append(1.0, "drop", "loss", "a", "b")
        log.append(2.0, "fault", "crash")
        assert log.records() == [
            (1.0, "drop", "loss", "a", "b"),
            (2.0, "fault", "crash"),
        ]
        assert len(log) == 2
        assert log.dropped == 0

    def test_capacity_bounds_retention(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.append(float(i), "e", i)
        assert len(log) == 4
        assert log.recorded == 10
        assert log.dropped == 6

    def test_ring_overwrites_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.append(float(i), "e", i)
        # The most recent window survives, oldest first.
        assert [record[2] for record in log.records()] == [2, 3, 4]

    def test_ring_wraps_repeatedly(self):
        log = EventLog(capacity=2)
        for i in range(101):
            log.append(float(i), "e", i)
        assert [record[2] for record in log] == [99, 100]
        assert log.dropped == 99

    def test_filter_by_kind(self):
        log = EventLog(capacity=8)
        log.append(1.0, "drop", "loss")
        log.append(2.0, "fault", "crash")
        log.append(3.0, "drop", "crashed")
        assert len(log.filter("drop")) == 2
        assert log.filter(None) == log.records()

    def test_clear_resets_everything(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.append(float(i), "e")
        log.clear()
        assert len(log) == 0
        assert log.recorded == 0
        assert log.dropped == 0
        # Usable again after clear, from a clean start index.
        log.append(9.0, "e", "fresh")
        assert log.records() == [(9.0, "e", "fresh")]

    def test_to_dicts_shape(self):
        log = EventLog(capacity=4)
        log.append(1.5, "drop", "loss", "a")
        assert log.to_dicts() == [
            {"time": 1.5, "kind": "drop", "fields": ["loss", "a"]}
        ]

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ObservabilityError):
            EventLog(capacity=0)
        with pytest.raises(ObservabilityError):
            EventLog(capacity=-1)
