"""Tests for the typed metrics instruments and registry."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_defaults_to_one(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = Counter("c")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_set_total_adopts_external_count(self):
        counter = Counter("c")
        counter.set_total(100)
        counter.set_total(100)  # repeated collect() must not double count
        assert counter.value == 100

    def test_sample_shape(self):
        counter = Counter("c", labels=(("kind", "tx"),))
        counter.inc()
        assert counter.sample() == {
            "name": "c",
            "type": "counter",
            "labels": {"kind": "tx"},
            "value": 1,
        }


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_can_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(3)
        assert gauge.value == -3


class TestHistogram:
    def test_exact_aggregates(self):
        hist = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0

    def test_empty_quantile_is_none(self):
        assert Histogram("h").quantile(0.5) is None

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h").quantile(1.5)

    def test_quantile_interpolates(self):
        hist = Histogram("h")
        for value in (0.0, 10.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 10.0
        assert hist.quantile(0.5) == 5.0

    def test_reservoir_is_bounded(self):
        hist = Histogram("h", max_samples=8)
        for i in range(10_000):
            hist.observe(float(i))
        assert hist.count == 10_000
        assert hist.reservoir_size <= 8
        # Exact aggregates survive the thinning.
        assert hist.min == 0.0
        assert hist.max == 9999.0

    def test_compaction_is_deterministic(self):
        a = Histogram("h", max_samples=16)
        b = Histogram("h", max_samples=16)
        for i in range(5_000):
            a.observe(float(i))
            b.observe(float(i))
        assert a._reservoir == b._reservoir
        assert a.quantile(0.9) == b.quantile(0.9)

    def test_too_small_reservoir_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", max_samples=1)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert len(registry) == 1

    def test_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"kind": "tx"})
        b = registry.counter("c", labels={"kind": "block"})
        assert a is not b
        a.inc()
        assert b.value == 0
        assert len(registry) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"x": "1", "y": "2"})
        b = registry.counter("c", labels={"y": "2", "x": "1"})
        assert a is b

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ObservabilityError):
            registry.gauge("m")

    def test_type_conflict_rejected_across_labels(self):
        registry = MetricsRegistry()
        registry.counter("m", labels={"kind": "tx"})
        with pytest.raises(ObservabilityError):
            registry.histogram("m", labels={"kind": "block"})

    def test_help_sticks_to_first_registration(self):
        registry = MetricsRegistry()
        registry.counter("m", "messages sent")
        registry.counter("m", "something else", labels={"kind": "tx"})
        assert registry.help_for("m") == "messages sent"

    def test_contains_by_name(self):
        registry = MetricsRegistry()
        registry.gauge("g")
        assert "g" in registry
        assert "missing" not in registry

    def test_collect_runs_collectors_and_sorts(self):
        registry = MetricsRegistry()
        registry.gauge("zzz")
        gauge = registry.gauge("aaa")
        source = {"value": 0}
        registry.add_collector(lambda: gauge.set(source["value"]))
        source["value"] = 42
        instruments = registry.collect()
        assert [i.name for i in instruments] == ["aaa", "zzz"]
        assert instruments[0].value == 42

    def test_snapshot_is_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", labels={"kind": "tx"}).inc()
        registry.histogram("h").observe(1.0)
        payload = registry.snapshot()
        assert json.dumps(payload)  # serializable
        assert {sample["name"] for sample in payload} == {"c", "h"}
